package experiment

import (
	"context"
	"fmt"

	"ripple/internal/cache"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/opt"
	"ripple/internal/runner"
	"ripple/internal/workload"
)

// prefetchers in paper order for the Fig. 7/8 panels.
var panelPrefetchers = []string{"none", "nlp", "fdip"}

// Fig7 reproduces Figure 7: Ripple's speedup over the per-prefetcher LRU
// baseline, next to the prior policies and the ideal replacement limit —
// one panel per prefetcher. Paper means: Ripple-LRU +1.25%/+2.13%/+1.4%
// under none/NLP/FDIP, vs. ideal +3.36%/+3.87%/+3.16%.
func (s *Suite) Fig7() ([]*Table, error) {
	jobs := s.crossJobs(s.cfg.Apps, panelPrefetchers, []string{"lru", "hawkeye", "drrip", "srrip", "ghrp"})
	jobs = append(jobs, s.rippleJobs(s.cfg.Apps, panelPrefetchers, []string{"random", "lru"})...)
	jobs = append(jobs, s.oracleJobs(s.cfg.Apps, panelPrefetchers)...)
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	var out []*Table
	for _, pf := range panelPrefetchers {
		t := NewTable("fig7-"+pf,
			fmt.Sprintf("Speedup over LRU baseline with %s prefetching (%%)", pf),
			"application",
			"hawkeye%", "drrip%", "srrip%", "ghrp%", "ripple-rand%", "ripple-lru%", "ideal%").WithMean()
		for _, app := range s.cfg.Apps {
			base, err := s.run(app, pf, "lru", false)
			if err != nil {
				return nil, err
			}
			var row []float64
			for _, pol := range []string{"hawkeye", "drrip", "srrip", "ghrp"} {
				r, err := s.run(app, pf, pol, false)
				if err != nil {
					return nil, err
				}
				row = append(row, speedupPct(base.Cycles, r.Cycles))
			}
			for _, pol := range []string{"random", "lru"} {
				ev, err := s.rippleFor(app, pf, pol)
				if err != nil {
					return nil, err
				}
				row = append(row, speedupPct(base.Cycles, ev.Best.Cycles))
			}
			idealRepl, err := s.idealReplacementCycles(app, pf)
			if err != nil {
				return nil, err
			}
			row = append(row, speedupPct(base.Cycles, idealRepl))
			t.AddRowF(app, "%.2f", row...)
		}
		out = append(out, t)
	}
	out[0].Note = "paper means (none): ripple-lru +1.25%, ideal +3.36%"
	out[1].Note = "paper means (nlp): ripple-lru +2.13%, ideal +3.87%"
	out[2].Note = "paper means (fdip): ripple-lru +1.4%, ideal +3.16%"
	return out, nil
}

// Fig8 reproduces Figure 8: the L1I miss reduction (%) over the LRU
// baseline for Ripple and the ideal policy, one panel per prefetcher.
// Paper means: Ripple-LRU avoids 33%/53%/41% of the misses the ideal
// policy avoids under none/NLP/FDIP (19% absolute mean reduction vs.
// 42.5% ideal).
func (s *Suite) Fig8() ([]*Table, error) {
	jobs := s.crossJobs(s.cfg.Apps, panelPrefetchers, []string{"lru"})
	jobs = append(jobs, s.rippleJobs(s.cfg.Apps, panelPrefetchers, []string{"random", "lru"})...)
	jobs = append(jobs, s.oracleJobs(s.cfg.Apps, panelPrefetchers)...)
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	var out []*Table
	for _, pf := range panelPrefetchers {
		t := NewTable("fig8-"+pf,
			fmt.Sprintf("L1I miss reduction over LRU with %s prefetching (%%)", pf),
			"application", "ripple-rand%", "ripple-lru%", "ideal%").WithMean()
		for _, app := range s.cfg.Apps {
			base, err := s.run(app, pf, "lru", false)
			if err != nil {
				return nil, err
			}
			baseMisses := float64(base.L1I.DemandMisses + base.LateMisses)
			reduction := func(m float64) float64 {
				if baseMisses == 0 {
					return 0
				}
				return (baseMisses - m) / baseMisses * 100
			}
			var row []float64
			for _, pol := range []string{"random", "lru"} {
				ev, err := s.rippleFor(app, pf, pol)
				if err != nil {
					return nil, err
				}
				row = append(row, reduction(float64(ev.Best.L1I.DemandMisses+ev.Best.LateMisses)))
			}
			ideal, err := s.oracleMissCount(app, pf, opt.ModeDemandMIN)
			if err != nil {
				return nil, err
			}
			row = append(row, reduction(float64(ideal)))
			t.AddRowF(app, "%.2f", row...)
		}
		out = append(out, t)
	}
	out[0].Note = "paper means (none): ripple-lru 9.57%, ideal 28.88%"
	out[1].Note = "paper means (nlp): ripple-lru 28.6%, ideal 53.66%"
	out[2].Note = "paper means (fdip): ripple-lru 18.61%, ideal 45%"
	return out, nil
}

// Fig9 reproduces Figure 9: Ripple's replacement coverage per application
// (fraction of all replacement decisions initiated by Ripple
// invalidations). Paper: >50% mean; below 50% only for the three JIT-heavy
// HHVM apps; 98.7% for verilator.
func (s *Suite) Fig9() (*Table, error) {
	if err := s.warm(s.rippleJobs(s.cfg.Apps, panelPrefetchers, []string{"lru"})...); err != nil {
		return nil, err
	}
	t := NewTable("fig9", "Ripple-LRU replacement coverage (%)",
		"application", "none%", "nlp%", "fdip%").WithMean()
	for _, app := range s.cfg.Apps {
		var row []float64
		for _, pf := range panelPrefetchers {
			ev, err := s.rippleFor(app, pf, "lru")
			if err != nil {
				return nil, err
			}
			row = append(row, ev.Best.Coverage()*100)
		}
		t.AddRowF(app, "%.1f", row...)
	}
	t.Note = "paper: >50% mean, HHVM apps lower (JIT code not instrumentable)"
	return t, nil
}

// Fig10 reproduces Figure 10: Ripple's replacement accuracy vs. the
// underlying LRU's own accuracy and the combined accuracy, under FDIP.
// Paper: Ripple 92% mean (min 88%), LRU 77.8%, combined 86%.
func (s *Suite) Fig10() (*Table, error) {
	if err := s.warm(s.rippleJobs(s.cfg.Apps, []string{"fdip"}, []string{"lru"})...); err != nil {
		return nil, err
	}
	t := NewTable("fig10", "Replacement accuracy under FDIP (%)",
		"application", "ripple%", "lru%", "combined%").WithMean()
	for _, app := range s.cfg.Apps {
		ev, err := s.rippleFor(app, "fdip", "lru")
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.1f",
			ev.Best.HintAccuracy()*100,
			ev.Best.PolicyAccuracy()*100,
			ev.Best.CombinedAccuracy()*100)
	}
	t.Note = "paper means: ripple 92%, LRU 77.8%, combined 86%"
	return t, nil
}

// Fig11 reproduces Figure 11: the static instruction overhead of the
// injected binaries. Paper: <4.4% everywhere, 3.4% mean.
func (s *Suite) Fig11() (*Table, error) {
	if err := s.warm(s.rippleJobs(s.cfg.Apps, panelPrefetchers, []string{"lru"})...); err != nil {
		return nil, err
	}
	t := NewTable("fig11", "Static instruction overhead of injection (%)",
		"application", "none%", "nlp%", "fdip%").WithMean()
	for _, app := range s.cfg.Apps {
		var row []float64
		for _, pf := range panelPrefetchers {
			ev, err := s.rippleFor(app, pf, "lru")
			if err != nil {
				return nil, err
			}
			row = append(row, ev.StaticOv)
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "paper: <4.4% per app, 3.4% mean"
	return t, nil
}

// Fig12 reproduces Figure 12: the dynamic instruction overhead of executed
// hints. Paper: 2.2% mean, ~10% for verilator (where coverage is almost
// total).
func (s *Suite) Fig12() (*Table, error) {
	if err := s.warm(s.rippleJobs(s.cfg.Apps, panelPrefetchers, []string{"lru"})...); err != nil {
		return nil, err
	}
	t := NewTable("fig12", "Dynamic instruction overhead of injection (%)",
		"application", "none%", "nlp%", "fdip%").WithMean()
	for _, app := range s.cfg.Apps {
		var row []float64
		for _, pf := range panelPrefetchers {
			ev, err := s.rippleFor(app, pf, "lru")
			if err != nil {
				return nil, err
			}
			row = append(row, core.DynamicOverheadPct(ev.Best))
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "paper: 2.2% mean, up to ~10% (verilator)"
	return t, nil
}

// fig13Cell computes one application's cross-input row: the input-#0
// plan's mean speedup on inputs #1-#3 vs. input-specific retuning.
func (s *Suite) fig13Cell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(3*(len(s.cfg.Thresholds)+4))
	return s.cell("fig13", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "fdip", "lru")
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("fdip", "lru", frontend.HintInvalidate)
		var genSum, specSum float64
		for input := 1; input <= 3; input++ {
			tr := s.source(st, input)
			base, err := core.RunPlan(st.app.Prog, tr, tcfg, nil)
			if err != nil {
				return nil, err
			}
			gen, err := core.RunPlan(st.app.Prog, tr, tcfg, ev.BestPlan)
			if err != nil {
				return nil, err
			}
			genSum += speedupPct(base.Cycles, gen.Cycles)

			acfg := core.DefaultAnalysisConfig()
			acfg.L1I = s.cfg.Params.L1I
			a, err := core.Analyze(st.app.Prog, tr, acfg)
			if err != nil {
				return nil, err
			}
			tune, err := core.TuneParallel(a, tr, tcfg, s.tuneOpts(app, input))
			if err != nil {
				return nil, err
			}
			specSum += tune.BestPoint().SpeedupPct
		}
		s.logf("[%s] fig13 done", app)
		return []float64{genSum / 3, specSum / 3}, nil
	})
}

// Fig13 reproduces Figure 13: cross-input generalization under FDIP+LRU.
// Each application is optimized with the input-#0 profile and evaluated on
// inputs #1-#3, against plans tuned on each input's own profile. Paper:
// input-specific profiles give 17% more IPC gain.
func (s *Suite) Fig13() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.cfg.Apps {
		jobs = append(jobs, s.fig13Cell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("fig13", "Cross-input speedup under FDIP+LRU (%, mean over inputs #1-#3)",
		"application", "profile#0%", "input-specific%").WithMean()
	for _, app := range s.cfg.Apps {
		row, err := s.cellRow(s.fig13Cell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "paper: input-specific profiles give 17% more IPC gain"
	return t, nil
}

// Fig6 reproduces Figure 6: the coverage/accuracy trade-off across the
// invalidation threshold for finagle-http. Paper: both >50%/>80% only in
// the 40-60% threshold band; per-app optima between 45% and 65%.
func (s *Suite) Fig6() (*Table, error) {
	const app = "finagle-http"
	curveJob := runner.NewJob(s.cellSig("fig6", app), "fig6 "+app,
		float64(s.cfg.TraceBlocks)*11,
		func(context.Context) (*[]core.ThresholdPoint, error) {
			st, err := s.state(app)
			if err != nil {
				return nil, err
			}
			a, err := s.analysisFor(app)
			if err != nil {
				return nil, err
			}
			tcfg := s.tuneCfg("fdip", "lru", frontend.HintInvalidate)
			tcfg.MeasureAccuracy = true
			tcfg.Thresholds = []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}
			tune, err := core.TuneParallel(a, s.source(st, 0), tcfg, s.tuneOpts(app, 0))
			if err != nil {
				return nil, err
			}
			return &tune.Curve, nil
		})
	v, err := s.pool.Do(s.ctx, curveJob)
	if err != nil {
		return nil, err
	}
	curve := *(v.(*[]core.ThresholdPoint))
	t := NewTable("fig6", "Coverage vs. accuracy vs. threshold (finagle-http, FDIP+LRU)",
		"threshold", "coverage%", "accuracy%", "mpki", "speedup%")
	for _, pt := range curve {
		t.AddRowF(fmt.Sprintf("%.2f", pt.Threshold), "%.2f",
			pt.Coverage*100, pt.Accuracy*100, pt.MPKI, pt.SpeedupPct)
	}
	t.Note = "paper: coverage falls and accuracy rises with threshold; sweet spot mid-range"
	return t, nil
}

// Fig5 reproduces the worked example of Figure 5 in spirit: it runs the
// eviction analysis on a miniature application against a tiny two-way
// I-cache and reports, for the most-evicted victim line, every candidate
// cue block with its execution count, window membership, and conditional
// probability.
func (s *Suite) Fig5() (*Table, error) {
	model := workload.Model{
		Name: "fig5-mini", Seed: 7,
		Funcs: 12, ServiceFuncs: 3, UtilityFuncs: 2, Levels: 3,
		BlocksMin: 3, BlocksMax: 5, BlockBytesMin: 24, BlockBytesMax: 64,
		PCond: 0.3, PCall: 0.3, PICall: 0, PIJump: 0,
		PLoopBack: 0.1, PBiasStrong: 0.8,
		CalleeMin: 1, CalleeMax: 2, IndirectFanout: 2,
		ZipfRequest: 0.8, RequestsPerBurst: 1,
	}
	app, err := workload.Build(model)
	if err != nil {
		return nil, err
	}
	tr := app.Stream(0, 4000)
	acfg := core.AnalysisConfig{
		L1I:             cache.Config{SizeBytes: 4 * 64, Ways: 2, LineBytes: 64},
		MaxWindowBlocks: 64,
	}
	a, err := core.Analyze(app.Prog, tr, acfg)
	if err != nil {
		return nil, err
	}
	line, n := a.MostEvictedLine()
	t := NewTable("fig5",
		fmt.Sprintf("Eviction analysis example: victim line %#x, %d eviction windows", line, n),
		"candidate cue block", "P(evict|exec)")
	for i, c := range a.Candidates(line) {
		if i >= 8 {
			break
		}
		t.AddRowF(fmt.Sprintf("B%d", c.Block), "%.3f", c.Probability)
	}
	t.Note = "mirrors the Fig. 5 conditional-probability computation on a miniature app"
	return t, nil
}

// demoteCell evaluates one application's invalidate-vs-demote pair.
func (s *Suite) demoteCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+5)
	return s.cell("demote", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		base, err := s.run(app, "fdip", "lru", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "fdip", "lru")
		if err != nil {
			return nil, err
		}
		dcfg := s.tuneCfg("fdip", "lru", frontend.HintDemote)
		dem, err := core.RunPlan(st.app.Prog, s.source(st, 0), dcfg, ev.BestPlan)
		if err != nil {
			return nil, err
		}
		return []float64{
			speedupPct(base.Cycles, ev.Best.Cycles),
			speedupPct(base.Cycles, dem.Cycles),
		}, nil
	})
}

// Demote reproduces the Sec. IV "invalidation vs. reducing LRU priority"
// experiment: the tuned Ripple-LRU plan executed with demote hints instead
// of invalidations, under FDIP. Paper: demotion nudges the mean speedup
// from 1.6% to 1.7% (all apps but verilator benefit).
func (s *Suite) Demote() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.cfg.Apps {
		jobs = append(jobs, s.demoteCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("demote", "Ripple-LRU with invalidate vs. demote hints, FDIP (% speedup over LRU)",
		"application", "invalidate%", "demote%").WithMean()
	for _, app := range s.cfg.Apps {
		row, err := s.cellRow(s.demoteCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "paper: demote variant slightly ahead on average (1.6% -> 1.7%)"
	return t, nil
}

// granularityCell evaluates one application's line-vs-block pair.
func (s *Suite) granularityCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+5)
	return s.cell("granularity", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		base, err := s.run(app, "fdip", "lru", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "fdip", "lru")
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("fdip", "lru", frontend.HintInvalidate)
		wide := ev.BestPlan.ExpandVictimsToBlocks(st.app.Prog)
		wr, err := core.RunPlan(st.app.Prog, s.source(st, 0), tcfg, wide)
		if err != nil {
			return nil, err
		}
		return []float64{
			speedupPct(base.Cycles, ev.Best.Cycles),
			speedupPct(base.Cycles, wr.Cycles),
		}, nil
	})
}

// Granularity reproduces the Sec. III-C invalidation-granularity ablation:
// the tuned plan's line-granularity victims vs. the same victims widened
// to whole basic blocks, under FDIP+LRU.
func (s *Suite) Granularity() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.cfg.Apps {
		jobs = append(jobs, s.granularityCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("granularity", "Victim granularity: cache line vs. whole block, FDIP+LRU (% speedup over LRU)",
		"application", "line%", "block%").WithMean()
	for _, app := range s.cfg.Apps {
		row, err := s.cellRow(s.granularityCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	return t, nil
}
