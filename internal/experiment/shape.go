package experiment

import (
	"fmt"
	"io"
)

// ShapeCheck validates the paper's qualitative claims against freshly
// computed tables — the reproduction's self-test. It returns the list of
// violated claims (empty = every claim holds). Computed tables are cached
// in the suite, so running it after `-run all` costs nothing extra.
//
// The checks assert *shape*, not absolute numbers: who wins, what is
// ordered above what, and where the paper's qualitative crossovers fall.
func (s *Suite) ShapeCheck(w io.Writer) ([]string, error) {
	var violations []string
	claim := func(ok bool, format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		status := "ok  "
		if !ok {
			status = "FAIL"
			violations = append(violations, msg)
		}
		if w != nil {
			fmt.Fprintf(w, "  [%s] %s\n", status, msg)
		}
	}
	mean := func(t *Table, col string) float64 {
		m, _ := t.Mean(col)
		return m
	}

	// Fig. 1: every app gains double digits from a perfect I-cache.
	fig1, err := s.Fig1()
	if err != nil {
		return nil, err
	}
	lo, hi := 1e9, -1e9
	for _, app := range fig1.Rows() {
		v, _ := fig1.Value(app, "ideal-speedup%")
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	claim(lo > 5 && hi < 60, "fig1: ideal-cache speedups span a plausible band (got %.1f-%.1f%%, paper 11-47%%)", lo, hi)

	// Fig. 2: FDIP captures most but not all of the ideal; ideal
	// replacement recovers part of the rest.
	fig2, err := s.Fig2()
	if err != nil {
		return nil, err
	}
	fdip, idealRepl, idealCache := mean(fig2, "fdip+lru%"), mean(fig2, "fdip+ideal-repl%"), mean(fig2, "ideal-cache%")
	claim(fdip > 0.5*idealCache && fdip < idealCache,
		"fig2: FDIP lands between half and all of the ideal cache (%.1f vs %.1f)", fdip, idealCache)
	claim(idealRepl > fdip && idealRepl <= idealCache,
		"fig2: ideal replacement recovers part of FDIP's gap (%.1f in (%.1f, %.1f])", idealRepl, fdip, idealCache)

	// Fig. 3: no prior policy beats LRU meaningfully although the ideal
	// has headroom.
	fig3, err := s.Fig3()
	if err != nil {
		return nil, err
	}
	worstPrior := -1e9
	for _, col := range []string{"hawkeye%", "harmony%", "srrip%", "drrip%", "ghrp%"} {
		if m := mean(fig3, col); m > worstPrior {
			worstPrior = m
		}
	}
	claim(worstPrior < 0.5, "fig3: best prior policy gains under 0.5%% over LRU (got %.2f%%)", worstPrior)
	claim(mean(fig3, "ideal%") > 0.5, "fig3: ideal replacement has real headroom (got %.2f%%)", mean(fig3, "ideal%"))

	// Compulsory misses are rare (no scanning).
	comp, err := s.Compulsory()
	if err != nil {
		return nil, err
	}
	claim(mean(comp, "compulsory-mpki") < 0.5, "compulsory MPKI is tiny (got %.2f, paper mean 0.16)", mean(comp, "compulsory-mpki"))

	// Fig. 7: Ripple-LRU beats LRU on average under every prefetcher and
	// never exceeds the ideal.
	fig7, err := s.Fig7()
	if err != nil {
		return nil, err
	}
	for _, t := range fig7 {
		rl, id := mean(t, "ripple-lru%"), mean(t, "ideal%")
		claim(rl >= 0, "%s: ripple-lru mean is non-negative (got %.2f%%)", t.ID, rl)
		claim(rl <= id, "%s: ripple-lru below the ideal limit (%.2f <= %.2f)", t.ID, rl, id)
	}

	// Fig. 9: JIT-heavy HHVM apps get less coverage than the rest;
	// verilator gets the most.
	fig9, err := s.Fig9()
	if err != nil {
		return nil, err
	}
	jit := map[string]bool{"drupal": true, "mediawiki": true, "wordpress": true}
	var jitSum, otherSum float64
	var jitN, otherN int
	var verilatorCov float64
	for _, app := range fig9.Rows() {
		v, _ := fig9.Value(app, "none%")
		if app == "verilator" {
			verilatorCov = v
		}
		if jit[app] {
			jitSum += v
			jitN++
		} else {
			otherSum += v
			otherN++
		}
	}
	if jitN > 0 && otherN > 0 {
		claim(jitSum/float64(jitN) < otherSum/float64(otherN),
			"fig9: JIT apps have lower coverage (%.1f%% vs %.1f%%)", jitSum/float64(jitN), otherSum/float64(otherN))
		claim(verilatorCov >= otherSum/float64(otherN),
			"fig9: verilator coverage is the high end (got %.1f%%)", verilatorCov)
	}

	// Fig. 10: Ripple's accuracy beats the underlying LRU's.
	fig10, err := s.Fig10()
	if err != nil {
		return nil, err
	}
	claim(mean(fig10, "ripple%") > mean(fig10, "lru%"),
		"fig10: ripple accuracy above LRU accuracy (%.1f%% vs %.1f%%)", mean(fig10, "ripple%"), mean(fig10, "lru%"))

	// Figs. 11/12: overheads stay inside the paper's envelope.
	fig11, err := s.Fig11()
	if err != nil {
		return nil, err
	}
	claim(mean(fig11, "none%") < 8, "fig11: static overhead bounded (got %.2f%%, paper <4.4%%)", mean(fig11, "none%"))
	fig12, err := s.Fig12()
	if err != nil {
		return nil, err
	}
	claim(mean(fig12, "none%") < 11, "fig12: dynamic overhead bounded (got %.2f%%, paper mean 2.2%%)", mean(fig12, "none%"))

	return violations, nil
}
