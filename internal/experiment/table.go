// Package experiment defines one reproducible experiment per table and
// figure of the paper's evaluation, shares simulation results across them
// through a caching runner, and renders the same rows/series the paper
// reports as ASCII tables. The cmd/rippleexp binary and bench_test.go are
// thin wrappers over this package.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is one rendered experiment artifact (a figure's data series or a
// literal table).
type Table struct {
	ID    string
	Title string
	Note  string
	// RowHeader labels the first column (usually "application").
	RowHeader string
	Cols      []string
	rows      []tableRow
	// meanCols marks which columns get an arithmetic-mean footer.
	meanCols []bool
}

type tableRow struct {
	label string
	cells []string
	vals  []float64 // NaN-free parallel values for mean computation
	isNum []bool
}

// NewTable constructs a table with the given identity and columns.
func NewTable(id, title, rowHeader string, cols ...string) *Table {
	return &Table{
		ID:        id,
		Title:     title,
		RowHeader: rowHeader,
		Cols:      cols,
		meanCols:  make([]bool, len(cols)),
	}
}

// WithMean enables the mean footer for all columns.
func (t *Table) WithMean() *Table {
	for i := range t.meanCols {
		t.meanCols[i] = true
	}
	return t
}

// AddRow appends a row of preformatted string cells (no mean
// contribution).
func (t *Table) AddRow(label string, cells ...string) {
	r := tableRow{label: label, cells: cells,
		vals:  make([]float64, len(cells)),
		isNum: make([]bool, len(cells))}
	t.rows = append(t.rows, r)
}

// AddRowF appends a row of numeric cells rendered with the given format
// (e.g. "%.2f"); they participate in the mean footer.
func (t *Table) AddRowF(label, format string, vals ...float64) {
	r := tableRow{label: label,
		cells: make([]string, len(vals)),
		vals:  append([]float64(nil), vals...),
		isNum: make([]bool, len(vals))}
	for i, v := range vals {
		r.cells[i] = fmt.Sprintf(format, v)
		r.isNum[i] = true
	}
	t.rows = append(t.rows, r)
}

// Value returns the numeric cell at (rowLabel, col); ok is false for
// missing or non-numeric cells. Tests use this to assert on results.
func (t *Table) Value(rowLabel, col string) (float64, bool) {
	ci := -1
	for i, c := range t.Cols {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.rows {
		if r.label == rowLabel && ci < len(r.cells) && r.isNum[ci] {
			return r.vals[ci], true
		}
	}
	return 0, false
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.label
	}
	return out
}

// Mean returns the arithmetic mean of a column over numeric cells.
func (t *Table) Mean(col string) (float64, bool) {
	ci := -1
	for i, c := range t.Cols {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	sum, n := 0.0, 0
	for _, r := range t.rows {
		if ci < len(r.cells) && r.isNum[ci] {
			sum += r.vals[ci]
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Cols)+1)
	widths[0] = len(t.RowHeader)
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
	}
	if widths[0] < len("mean") {
		widths[0] = len("mean")
	}
	for i, c := range t.Cols {
		widths[i+1] = len(c)
		for _, r := range t.rows {
			if i < len(r.cells) && len(r.cells[i]) > widths[i+1] {
				widths[i+1] = len(r.cells[i])
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[0], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, b.String())
	}
	hdr := append([]string{t.RowHeader}, t.Cols...)
	line(hdr)
	sep := make([]string, len(hdr))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(append([]string{r.label}, r.cells...))
	}
	if t.anyMean() {
		cells := []string{"mean"}
		for i, c := range t.Cols {
			if !t.meanCols[i] {
				cells = append(cells, "")
				continue
			}
			if m, ok := t.Mean(c); ok {
				cells = append(cells, strconv.FormatFloat(m, 'f', 2, 64))
			} else {
				cells = append(cells, "")
			}
		}
		line(sep)
		line(cells)
	}
}

// tableJSON mirrors Table for persistence in the result store (the row
// fields are unexported to keep the mutation API narrow). Values are
// encoded as hex floats so NaN/Inf survive and every float round-trips
// bit-exactly: a table served from the cache renders byte-identically to
// a freshly computed one.
type tableJSON struct {
	ID        string
	Title     string
	Note      string
	RowHeader string
	Cols      []string
	MeanCols  []bool
	Rows      []tableRowJSON
}

type tableRowJSON struct {
	Label string
	Cells []string
	Vals  []string
	IsNum []bool
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		ID: t.ID, Title: t.Title, Note: t.Note,
		RowHeader: t.RowHeader, Cols: t.Cols, MeanCols: t.meanCols,
	}
	for _, r := range t.rows {
		vals := make([]string, len(r.vals))
		for i, v := range r.vals {
			vals[i] = strconv.FormatFloat(v, 'x', -1, 64)
		}
		out.Rows = append(out.Rows, tableRowJSON{
			Label: r.label, Cells: r.cells, Vals: vals, IsNum: r.isNum,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*t = Table{
		ID: in.ID, Title: in.Title, Note: in.Note,
		RowHeader: in.RowHeader, Cols: in.Cols, meanCols: in.MeanCols,
	}
	for _, r := range in.Rows {
		vals := make([]float64, len(r.Vals))
		for i, s := range r.Vals {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("experiment: decode table value %q: %w", s, err)
			}
			vals[i] = v
		}
		if len(r.Cells) != len(vals) || len(r.IsNum) != len(vals) {
			return fmt.Errorf("experiment: decode table row %q: ragged lengths", r.Label)
		}
		t.rows = append(t.rows, tableRow{label: r.Label, cells: r.Cells, vals: vals, isNum: r.IsNum})
	}
	return nil
}

func (t *Table) anyMean() bool {
	for _, m := range t.meanCols {
		if m {
			return true
		}
	}
	return false
}
