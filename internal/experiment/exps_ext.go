package experiment

import (
	"fmt"

	"ripple/internal/cache"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/layout"
	"ripple/internal/lbr"
	"ripple/internal/opt"
	"ripple/internal/prefetch"
	"ripple/internal/program"
	"ripple/internal/replacement"
	"ripple/internal/workload"
)

// extApps is the representative subset used by the extension experiments
// (one JVM service, one HHVM/JIT app, the generated-code outlier).
var extApps = []string{"finagle-http", "drupal", "verilator"}

func (s *Suite) extApps() []string {
	// Respect an explicit app restriction; otherwise use the subset.
	if len(s.cfg.Apps) < len(extApps) {
		return s.cfg.Apps
	}
	return extApps
}

// Arch reproduces the Sec. V discussion: Ripple generates binaries per
// target I-cache geometry. For each application the plan is tuned against
// three geometries; each plan is then evaluated on every geometry. The
// diagonal (matched target) should dominate its column — running a binary
// optimized for the wrong cache forfeits most of the gain.
func (s *Suite) Arch() (*Table, error) {
	geoms := []struct {
		name string
		cfg  cache.Config
	}{
		{"16KB/4w", cache.Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64}},
		{"32KB/8w", cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}},
		{"64KB/8w", cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64}},
	}
	t := NewTable("arch", "Per-target-architecture tuning: plan geometry vs run geometry (% speedup over LRU, no prefetch)",
		"app/plan-for", "run@16KB/4w%", "run@32KB/8w%", "run@64KB/8w%")
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.trace(st, 0)
		for _, planGeo := range geoms {
			acfg := core.DefaultAnalysisConfig()
			acfg.L1I = planGeo.cfg
			a, err := core.Analyze(st.app.Prog, tr, acfg)
			if err != nil {
				return nil, err
			}
			tuneParams := s.cfg.Params
			tuneParams.L1I = planGeo.cfg
			tcfg := core.TuneConfig{
				Params:       tuneParams,
				Policy:       "lru",
				Prefetcher:   "none",
				Thresholds:   s.cfg.Thresholds,
				WarmupBlocks: s.cfg.WarmupBlocks,
			}
			tuned, err := core.Tune(a, tr, tcfg)
			if err != nil {
				return nil, err
			}
			row := make([]float64, 0, len(geoms))
			for _, runGeo := range geoms {
				runParams := s.cfg.Params
				runParams.L1I = runGeo.cfg
				rcfg := tcfg
				rcfg.Params = runParams
				base, err := core.RunPlan(st.app.Prog, tr, rcfg, nil)
				if err != nil {
					return nil, err
				}
				res, err := core.RunPlan(st.app.Prog, tr, rcfg, tuned.BestPlan)
				if err != nil {
					return nil, err
				}
				row = append(row, speedupPct(base.Cycles, res.Cycles))
			}
			t.AddRowF(fmt.Sprintf("%s@%s", app, planGeo.name), "%.2f", row...)
		}
		s.logf("[%s] arch done", app)
	}
	t.Note = "Sec. V: binaries are optimized per I-cache geometry; mismatched targets lose gain"
	return t, nil
}

// Merged extends Fig. 13: a plan tuned on the union of input #0 and #1
// profiles, evaluated on unseen inputs #2 and #3, against the single-input
// plan. Merged profiles should generalize at least as well.
func (s *Suite) Merged() (*Table, error) {
	t := NewTable("merged", "Profile merging: plan from input #0 vs inputs {#0,#1}, evaluated on #2/#3 (FDIP+LRU, % speedup)",
		"application", "single#0%", "merged#0+1%").WithMean()
	tcfg := s.tuneCfg("fdip", "lru", frontend.HintInvalidate)
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "fdip", "lru")
		if err != nil {
			return nil, err
		}
		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		multi, err := core.AnalyzeMulti(st.app.Prog,
			[][]program.BlockID{s.trace(st, 0), s.trace(st, 1)}, acfg)
		if err != nil {
			return nil, err
		}
		mergedTune, err := core.Tune(multi, s.trace(st, 0), tcfg)
		if err != nil {
			return nil, err
		}
		var single, merged float64
		for input := 2; input <= 3; input++ {
			tr := s.trace(st, input)
			base, err := core.RunPlan(st.app.Prog, tr, tcfg, nil)
			if err != nil {
				return nil, err
			}
			sr, err := core.RunPlan(st.app.Prog, tr, tcfg, ev.tune.BestPlan)
			if err != nil {
				return nil, err
			}
			mr, err := core.RunPlan(st.app.Prog, tr, tcfg, mergedTune.BestPlan)
			if err != nil {
				return nil, err
			}
			single += speedupPct(base.Cycles, sr.Cycles) / 2
			merged += speedupPct(base.Cycles, mr.Cycles) / 2
		}
		t.AddRowF(app, "%.2f", single, merged)
		s.logf("[%s] merged done", app)
	}
	return t, nil
}

// LBR compares profile sources (Sec. III-A names both PT and LBR): a full
// PT trace, PT *burst* sampling (periodic multi-thousand-block captures,
// the AutoFDO-style production compromise), and classic 32-deep LBR
// samples. An eviction window spans hundreds-to-thousands of blocks, so
// 32-block LBR fragments witness essentially none (the analysis finds no
// windows at all), bursts recover most of the signal, and the full trace
// is the ceiling — quantifying why the paper profiles with PT.
func (s *Suite) LBR() (*Table, error) {
	t := NewTable("lbr", "Profile source: full PT vs PT-burst sampling vs LBR (no prefetch, LRU)",
		"application", "pt%", "burst%", "lbr%", "burst-windows", "lbr-windows", "pt-windows")
	tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.trace(st, 0)
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}

		sampled := func(cfg lbr.Config) (*core.TuneResult, int, error) {
			prof, err := lbr.Sample(tr, cfg)
			if err != nil {
				return nil, 0, err
			}
			acfg := core.DefaultAnalysisConfig()
			acfg.L1I = s.cfg.Params.L1I
			la, err := core.AnalyzeMulti(st.app.Prog, prof.Fragments, acfg)
			if err != nil {
				return nil, 0, err
			}
			tuned, err := core.Tune(la, tr, tcfg)
			if err != nil {
				return nil, 0, err
			}
			return tuned, la.Windows, nil
		}
		// ~25% duty-cycle PT bursts vs classic 32-deep LBR samples.
		burst, burstWin, err := sampled(lbr.Config{Interval: 16_384, Depth: 4_096, Seed: 0x1B12})
		if err != nil {
			return nil, err
		}
		classic, lbrWin, err := sampled(lbr.Config{Interval: 400, Depth: 32, Seed: 0x1B12})
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f",
			ev.tune.BestPoint().SpeedupPct,
			burst.BestPoint().SpeedupPct,
			classic.BestPoint().SpeedupPct,
			float64(burstWin),
			float64(lbrWin),
			float64(ev.analysis.Windows))
		s.logf("[%s] lbr done", app)
	}
	t.Note = "eviction windows span hundreds of blocks: LBR depth cannot see them, PT bursts can"
	return t, nil
}

// XPrefetch evaluates the temporal record/replay prefetcher (TIFS-like)
// the paper's related work contrasts FDIP against: effective but at an
// on-chip metadata cost far beyond Table I, and still improved by Ripple.
func (s *Suite) XPrefetch() (*Table, error) {
	t := NewTable("xprefetch", "Temporal (record/replay) prefetching vs the paper's baselines (LRU, % speedup over no-prefetch LRU)",
		"application", "nlp%", "fdip%", "tifs%", "ripple-tifs%", "tifs-metadata")
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		base, err := s.run(app, "none", "lru", false)
		if err != nil {
			return nil, err
		}
		nlp, err := s.run(app, "nlp", "lru", false)
		if err != nil {
			return nil, err
		}
		fdip, err := s.run(app, "fdip", "lru", false)
		if err != nil {
			return nil, err
		}

		// TIFS baseline (not cached by the panel runner).
		pol, _ := replacement.New("lru")
		tf, err := prefetch.New("tifs", st.app.Prog)
		if err != nil {
			return nil, err
		}
		tifsRes, err := frontend.Run(s.cfg.Params, st.app.Prog, s.trace(st, 0), frontend.Options{
			Policy:       pol,
			Prefetcher:   tf,
			WarmupBlocks: s.cfg.WarmupBlocks,
		})
		if err != nil {
			return nil, err
		}
		meta := "n/a"
		if tp, ok := tf.(*prefetch.TIFS); ok {
			meta = fmt.Sprintf("%dKB", tp.MetadataBytes()>>10)
		}

		// Ripple on top of TIFS.
		a, err := s.analysisFor(app)
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("tifs", "lru", frontend.HintInvalidate)
		tuned, err := core.Tune(a, s.trace(st, 0), tcfg)
		if err != nil {
			return nil, err
		}
		rippleTifs, err := core.RunPlan(st.app.Prog, s.trace(st, 0), tcfg, tuned.BestPlan)
		if err != nil {
			return nil, err
		}

		t.AddRow(app,
			fmt.Sprintf("%.2f", speedupPct(base.Cycles, nlp.Cycles)),
			fmt.Sprintf("%.2f", speedupPct(base.Cycles, fdip.Cycles)),
			fmt.Sprintf("%.2f", speedupPct(base.Cycles, tifsRes.Cycles)),
			fmt.Sprintf("%.2f", speedupPct(base.Cycles, rippleTifs.Cycles)),
			meta)
		s.logf("[%s] xprefetch done", app)
	}
	t.Note = "record/replay prefetching needs orders of magnitude more metadata than Table I budgets"
	return t, nil
}

// Layout is the injection-placement ablation: the tuned plan executed
// with layout-neutral placement (padding/NOP slots — the pipeline
// default) vs. naive full relayout, which shifts every downstream byte,
// remaps the hot footprint across cache sets, and invalidates the profile
// the plan was computed from.
func (s *Suite) Layout() (*Table, error) {
	t := NewTable("layout", "Injection placement: layout-neutral vs full relayout (no prefetch, LRU, % speedup)",
		"application", "preserve%", "shift%").WithMean()
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		base, err := s.run(app, "none", "lru", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}
		shiftCfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
		shiftCfg.ShiftLayout = true
		shifted, err := core.RunPlan(st.app.Prog, s.trace(st, 0), shiftCfg, ev.tune.BestPlan)
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f",
			speedupPct(base.Cycles, ev.best.Cycles),
			speedupPct(base.Cycles, shifted.Cycles))
	}
	t.Note = "relayout invalidates the profiled line-to-set mapping; padding placement keeps it"
	return t, nil
}

// CodeLayout compares Ripple against the code-layout-optimization family
// the paper's introduction cites (AutoFDO/BOLT-style function clustering
// and hot/cold block reordering) and shows the two compose: the layout
// optimizer and Ripple consume the same profile, and Ripple's analysis is
// re-run on the optimized image before injection, as a production pipeline
// would do.
func (s *Suite) CodeLayout() (*Table, error) {
	t := NewTable("codelayout", "Code layout (BOLT/C3-style) vs Ripple vs both (no prefetch, LRU, % speedup over baseline)",
		"application", "layout%", "ripple%", "layout+ripple%").WithMean()
	tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.trace(st, 0)
		base, err := s.run(app, "none", "lru", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}

		prof := layout.ProfileFromTrace(st.app.Prog, tr)
		optProg, err := layout.Optimize(st.app.Prog, prof, layout.DefaultOptions())
		if err != nil {
			return nil, err
		}
		layoutOnly, err := core.RunPlan(optProg, tr, tcfg, nil)
		if err != nil {
			return nil, err
		}

		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		a2, err := core.Analyze(optProg, tr, acfg)
		if err != nil {
			return nil, err
		}
		tuned, err := core.Tune(a2, tr, tcfg)
		if err != nil {
			return nil, err
		}
		both, err := core.RunPlan(optProg, tr, tcfg, tuned.BestPlan)
		if err != nil {
			return nil, err
		}

		t.AddRowF(app, "%.2f",
			speedupPct(base.Cycles, layoutOnly.Cycles),
			speedupPct(base.Cycles, ev.best.Cycles),
			speedupPct(base.Cycles, both.Cycles))
		s.logf("[%s] codelayout done", app)
	}
	t.Note = "layout packs hot lines; Ripple fixes replacement; gains stack when composed"
	return t, nil
}

// WindowCap is the MaxWindowBlocks design-choice ablation DESIGN.md calls
// out: how far back from each ideal eviction the candidate scan walks.
// Too small and cue candidates near the victim's last use are lost; the
// default (2048) captures nearly all windows at tractable analysis cost.
func (s *Suite) WindowCap() (*Table, error) {
	caps := []int{64, 512, 2048}
	t := NewTable("windowcap", "Analysis window cap ablation (no prefetch, LRU, tuned speedup %)",
		"app/cap", "windows", "covered@best", "speedup%")
	tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.trace(st, 0)
		for _, wc := range caps {
			acfg := core.DefaultAnalysisConfig()
			acfg.L1I = s.cfg.Params.L1I
			acfg.MaxWindowBlocks = wc
			a, err := core.Analyze(st.app.Prog, tr, acfg)
			if err != nil {
				return nil, err
			}
			tuned, err := core.Tune(a, tr, tcfg)
			if err != nil {
				return nil, err
			}
			t.AddRowF(fmt.Sprintf("%s/%d", app, wc), "%.2f",
				float64(a.Windows),
				float64(tuned.BestPlan.WindowsCovered),
				tuned.BestPoint().SpeedupPct)
		}
		s.logf("[%s] windowcap done", app)
	}
	return t, nil
}

// HintCost is the hint-execution-cost sensitivity ablation: the frontend
// charges each executed invalidate HintCPI cycles (a dependency-free µop;
// default 0.12). The conclusions must not hinge on that constant, so the
// tuned plan is re-evaluated with the hint priced at zero and at a full
// average instruction (BaseCPI).
func (s *Suite) HintCost() (*Table, error) {
	t := NewTable("hintcost", "Hint execution cost sensitivity (no prefetch, LRU, % speedup over LRU)",
		"application", "free%", "default%", "full-instr%").WithMean()
	for _, app := range s.extApps() {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}
		var row []float64
		for _, hintCPI := range []float64{0, s.cfg.Params.HintCPI, s.cfg.Params.BaseCPI} {
			params := s.cfg.Params
			params.HintCPI = hintCPI
			tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
			tcfg.Params = params
			base, err := core.RunPlan(st.app.Prog, s.trace(st, 0), tcfg, nil)
			if err != nil {
				return nil, err
			}
			res, err := core.RunPlan(st.app.Prog, s.trace(st, 0), tcfg, ev.tune.BestPlan)
			if err != nil {
				return nil, err
			}
			row = append(row, speedupPct(base.Cycles, res.Cycles))
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "dynamic hint counts are ~0.2% of instructions, so even full-price hints barely move the result"
	return t, nil
}

// Phases exercises the dynamic reuse-distance variance the paper blames
// for static classifiers' failure (Sec. II-D): a phased variant of each
// application rotates its request popularity every 60 requests, so the
// same lines are cache-friendly in one phase and cache-averse in the
// next. Ripple's profile covers all phases and its cue probabilities stay
// predictive, so the gains survive phase churn.
func (s *Suite) Phases() (*Table, error) {
	t := NewTable("phases", "Phase-varying request mixes (no prefetch, LRU)",
		"app/variant", "lru-mpki", "ripple%", "ideal%")
	tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
	for _, appName := range s.extApps() {
		model, ok := workload.ByName(appName)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown app %q", appName)
		}
		for _, phased := range []bool{false, true} {
			m := model
			label := appName + "/steady"
			if phased {
				m.PhaseRequests = 60
				m.Name = appName + "-phased"
				label = appName + "/phased"
			}
			app, err := workload.Build(m)
			if err != nil {
				return nil, err
			}
			tr := app.Trace(0, s.cfg.TraceBlocks)
			pol, _ := replacement.New("lru")
			base, err := frontend.Run(s.cfg.Params, app.Prog, tr, frontend.Options{
				Policy:       pol,
				RecordStream: true,
				WarmupBlocks: s.cfg.WarmupBlocks,
			})
			if err != nil {
				return nil, err
			}
			idealMisses := opt.Simulate(base.Stream, s.cfg.Params.L1I, opt.ModeDemandMIN, false).DemandMisses
			base.Stream = nil
			acfg := core.DefaultAnalysisConfig()
			acfg.L1I = s.cfg.Params.L1I
			a, err := core.Analyze(app.Prog, tr, acfg)
			if err != nil {
				return nil, err
			}
			tuned, err := core.Tune(a, tr, tcfg)
			if err != nil {
				return nil, err
			}
			t.AddRowF(label, "%.2f",
				base.MPKI(),
				tuned.BestPoint().SpeedupPct,
				speedupPct(base.Cycles, idealCyclesFrom(base, idealMisses)))
		}
		s.logf("[%s] phases done", appName)
	}
	t.Note = "Ripple's profile spans the phases, so cue probabilities remain predictive"
	return t, nil
}
