package experiment

import (
	"fmt"

	"ripple/internal/blockseq"
	"ripple/internal/cache"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/layout"
	"ripple/internal/lbr"
	"ripple/internal/opt"
	"ripple/internal/prefetch"
	"ripple/internal/replacement"
	"ripple/internal/runner"
	"ripple/internal/workload"
)

// extApps is the representative subset used by the extension experiments
// (one JVM service, one HHVM/JIT app, the generated-code outlier).
var extApps = []string{"finagle-http", "drupal", "verilator"}

func (s *Suite) extApps() []string {
	// Respect an explicit app restriction; otherwise use the subset.
	if len(s.cfg.Apps) < len(extApps) {
		return s.cfg.Apps
	}
	return extApps
}

// archGeoms are the I-cache geometries of the Arch experiment.
var archGeoms = []struct {
	name string
	cfg  cache.Config
}{
	{"16KB/4w", cache.Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64}},
	{"32KB/8w", cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}},
	{"64KB/8w", cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64}},
}

// archCell tunes one application against one plan geometry and evaluates
// the plan on every run geometry.
func (s *Suite) archCell(app string, planIdx int) runner.Job {
	planGeo := archGeoms[planIdx]
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+2*len(archGeoms))
	return s.cell("arch", fmt.Sprintf("%s@%s", app, planGeo.name), cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.source(st, 0)
		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = planGeo.cfg
		a, err := core.Analyze(st.app.Prog, tr, acfg)
		if err != nil {
			return nil, err
		}
		tuneParams := s.cfg.Params
		tuneParams.L1I = planGeo.cfg
		tcfg := core.TuneConfig{
			Params:       tuneParams,
			Policy:       "lru",
			Prefetcher:   "none",
			Thresholds:   s.cfg.Thresholds,
			WarmupBlocks: s.cfg.WarmupBlocks,
		}
		tuned, err := core.TuneParallel(a, tr, tcfg, s.tuneOpts(app, 0))
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(archGeoms))
		for _, runGeo := range archGeoms {
			runParams := s.cfg.Params
			runParams.L1I = runGeo.cfg
			rcfg := tcfg
			rcfg.Params = runParams
			base, err := core.RunPlan(st.app.Prog, tr, rcfg, nil)
			if err != nil {
				return nil, err
			}
			res, err := core.RunPlan(st.app.Prog, tr, rcfg, tuned.BestPlan)
			if err != nil {
				return nil, err
			}
			row = append(row, speedupPct(base.Cycles, res.Cycles))
		}
		s.logf("[%s] arch %s done", app, planGeo.name)
		return row, nil
	})
}

// Arch reproduces the Sec. V discussion: Ripple generates binaries per
// target I-cache geometry. For each application the plan is tuned against
// three geometries; each plan is then evaluated on every geometry. The
// diagonal (matched target) should dominate its column — running a binary
// optimized for the wrong cache forfeits most of the gain.
func (s *Suite) Arch() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		for i := range archGeoms {
			jobs = append(jobs, s.archCell(app, i))
		}
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("arch", "Per-target-architecture tuning: plan geometry vs run geometry (% speedup over LRU, no prefetch)",
		"app/plan-for", "run@16KB/4w%", "run@32KB/8w%", "run@64KB/8w%")
	for _, app := range s.extApps() {
		for i, planGeo := range archGeoms {
			row, err := s.cellRow(s.archCell(app, i))
			if err != nil {
				return nil, err
			}
			t.AddRowF(fmt.Sprintf("%s@%s", app, planGeo.name), "%.2f", row...)
		}
	}
	t.Note = "Sec. V: binaries are optimized per I-cache geometry; mismatched targets lose gain"
	return t, nil
}

// mergedCell evaluates one application's single-input vs merged-profile
// plans on the unseen inputs.
func (s *Suite) mergedCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+8)
	return s.cell("merged", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "fdip", "lru")
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("fdip", "lru", frontend.HintInvalidate)
		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		multi, err := core.AnalyzeMulti(st.app.Prog,
			[]blockseq.Source{s.source(st, 0), s.source(st, 1)}, acfg)
		if err != nil {
			return nil, err
		}
		mergedTune, err := core.TuneParallel(multi, s.source(st, 0), tcfg, s.tuneOpts(app, 0))
		if err != nil {
			return nil, err
		}
		var single, merged float64
		for input := 2; input <= 3; input++ {
			tr := s.source(st, input)
			base, err := core.RunPlan(st.app.Prog, tr, tcfg, nil)
			if err != nil {
				return nil, err
			}
			sr, err := core.RunPlan(st.app.Prog, tr, tcfg, ev.BestPlan)
			if err != nil {
				return nil, err
			}
			mr, err := core.RunPlan(st.app.Prog, tr, tcfg, mergedTune.BestPlan)
			if err != nil {
				return nil, err
			}
			single += speedupPct(base.Cycles, sr.Cycles) / 2
			merged += speedupPct(base.Cycles, mr.Cycles) / 2
		}
		s.logf("[%s] merged done", app)
		return []float64{single, merged}, nil
	})
}

// Merged extends Fig. 13: a plan tuned on the union of input #0 and #1
// profiles, evaluated on unseen inputs #2 and #3, against the single-input
// plan. Merged profiles should generalize at least as well.
func (s *Suite) Merged() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		jobs = append(jobs, s.mergedCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("merged", "Profile merging: plan from input #0 vs inputs {#0,#1}, evaluated on #2/#3 (FDIP+LRU, % speedup)",
		"application", "single#0%", "merged#0+1%").WithMean()
	for _, app := range s.extApps() {
		row, err := s.cellRow(s.mergedCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	return t, nil
}

// lbrCell compares one application's profile sources.
func (s *Suite) lbrCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(3*len(s.cfg.Thresholds)+6)
	return s.cell("lbr", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.source(st, 0)
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
		sampled := func(cfg lbr.Config) (*core.TuneResult, int, error) {
			prof, err := lbr.Sample(tr, cfg)
			if err != nil {
				return nil, 0, err
			}
			acfg := core.DefaultAnalysisConfig()
			acfg.L1I = s.cfg.Params.L1I
			la, err := core.AnalyzeMulti(st.app.Prog, prof.Sources(), acfg)
			if err != nil {
				return nil, 0, err
			}
			tuned, err := core.TuneParallel(la, tr, tcfg, s.tuneOpts(app, 0))
			if err != nil {
				return nil, 0, err
			}
			return tuned, la.Windows, nil
		}
		// ~25% duty-cycle PT bursts vs classic 32-deep LBR samples.
		burst, burstWin, err := sampled(lbr.Config{Interval: 16_384, Depth: 4_096, Seed: 0x1B12})
		if err != nil {
			return nil, err
		}
		classic, lbrWin, err := sampled(lbr.Config{Interval: 400, Depth: 32, Seed: 0x1B12})
		if err != nil {
			return nil, err
		}
		s.logf("[%s] lbr done", app)
		return []float64{
			ev.BestPoint().SpeedupPct,
			burst.BestPoint().SpeedupPct,
			classic.BestPoint().SpeedupPct,
			float64(burstWin),
			float64(lbrWin),
			float64(ev.AnalysisWindows),
		}, nil
	})
}

// LBR compares profile sources (Sec. III-A names both PT and LBR): a full
// PT trace, PT *burst* sampling (periodic multi-thousand-block captures,
// the AutoFDO-style production compromise), and classic 32-deep LBR
// samples. An eviction window spans hundreds-to-thousands of blocks, so
// 32-block LBR fragments witness essentially none (the analysis finds no
// windows at all), bursts recover most of the signal, and the full trace
// is the ceiling — quantifying why the paper profiles with PT.
func (s *Suite) LBR() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		jobs = append(jobs, s.lbrCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("lbr", "Profile source: full PT vs PT-burst sampling vs LBR (no prefetch, LRU)",
		"application", "pt%", "burst%", "lbr%", "burst-windows", "lbr-windows", "pt-windows")
	for _, app := range s.extApps() {
		row, err := s.cellRow(s.lbrCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "eviction windows span hundreds of blocks: LBR depth cannot see them, PT bursts can"
	return t, nil
}

// xprefetchCell evaluates temporal prefetching for one application; the
// final element is the TIFS metadata footprint in KB (-1 when the
// prefetcher exposes no accounting).
func (s *Suite) xprefetchCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+6)
	return s.cell("xprefetch", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		base, err := s.run(app, "none", "lru", false)
		if err != nil {
			return nil, err
		}
		nlp, err := s.run(app, "nlp", "lru", false)
		if err != nil {
			return nil, err
		}
		fdip, err := s.run(app, "fdip", "lru", false)
		if err != nil {
			return nil, err
		}

		// TIFS baseline (not part of the standard panel cross-product).
		pol, _ := replacement.New("lru")
		tf, err := prefetch.New("tifs", st.app.Prog)
		if err != nil {
			return nil, err
		}
		tifsRes, err := frontend.Run(s.cfg.Params, st.app.Prog, s.source(st, 0), frontend.Options{
			Policy:       pol,
			Prefetcher:   tf,
			WarmupBlocks: s.cfg.WarmupBlocks,
		})
		if err != nil {
			return nil, err
		}
		metaKB := -1.0
		if tp, ok := tf.(*prefetch.TIFS); ok {
			metaKB = float64(tp.MetadataBytes() >> 10)
		}

		// Ripple on top of TIFS.
		a, err := s.analysisFor(app)
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("tifs", "lru", frontend.HintInvalidate)
		tuned, err := core.TuneParallel(a, s.source(st, 0), tcfg, s.tuneOpts(app, 0))
		if err != nil {
			return nil, err
		}
		rippleTifs, err := core.RunPlan(st.app.Prog, s.source(st, 0), tcfg, tuned.BestPlan)
		if err != nil {
			return nil, err
		}
		s.logf("[%s] xprefetch done", app)
		return []float64{
			speedupPct(base.Cycles, nlp.Cycles),
			speedupPct(base.Cycles, fdip.Cycles),
			speedupPct(base.Cycles, tifsRes.Cycles),
			speedupPct(base.Cycles, rippleTifs.Cycles),
			metaKB,
		}, nil
	})
}

// XPrefetch evaluates the temporal record/replay prefetcher (TIFS-like)
// the paper's related work contrasts FDIP against: effective but at an
// on-chip metadata cost far beyond Table I, and still improved by Ripple.
func (s *Suite) XPrefetch() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		jobs = append(jobs, s.xprefetchCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("xprefetch", "Temporal (record/replay) prefetching vs the paper's baselines (LRU, % speedup over no-prefetch LRU)",
		"application", "nlp%", "fdip%", "tifs%", "ripple-tifs%", "tifs-metadata")
	for _, app := range s.extApps() {
		row, err := s.cellRow(s.xprefetchCell(app))
		if err != nil {
			return nil, err
		}
		meta := "n/a"
		if row[4] >= 0 {
			meta = fmt.Sprintf("%dKB", int64(row[4]))
		}
		t.AddRow(app,
			fmt.Sprintf("%.2f", row[0]),
			fmt.Sprintf("%.2f", row[1]),
			fmt.Sprintf("%.2f", row[2]),
			fmt.Sprintf("%.2f", row[3]),
			meta)
	}
	t.Note = "record/replay prefetching needs orders of magnitude more metadata than Table I budgets"
	return t, nil
}

// layoutCell evaluates one application's placement pair.
func (s *Suite) layoutCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+5)
	return s.cell("layout", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		base, err := s.run(app, "none", "lru", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}
		shiftCfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
		shiftCfg.ShiftLayout = true
		shifted, err := core.RunPlan(st.app.Prog, s.source(st, 0), shiftCfg, ev.BestPlan)
		if err != nil {
			return nil, err
		}
		return []float64{
			speedupPct(base.Cycles, ev.Best.Cycles),
			speedupPct(base.Cycles, shifted.Cycles),
		}, nil
	})
}

// Layout is the injection-placement ablation: the tuned plan executed
// with layout-neutral placement (padding/NOP slots — the pipeline
// default) vs. naive full relayout, which shifts every downstream byte,
// remaps the hot footprint across cache sets, and invalidates the profile
// the plan was computed from.
func (s *Suite) Layout() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		jobs = append(jobs, s.layoutCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("layout", "Injection placement: layout-neutral vs full relayout (no prefetch, LRU, % speedup)",
		"application", "preserve%", "shift%").WithMean()
	for _, app := range s.extApps() {
		row, err := s.cellRow(s.layoutCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "relayout invalidates the profiled line-to-set mapping; padding placement keeps it"
	return t, nil
}

// codeLayoutCell evaluates layout-only / ripple-only / composed for one
// application.
func (s *Suite) codeLayoutCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(2*len(s.cfg.Thresholds)+6)
	return s.cell("codelayout", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.source(st, 0)
		base, err := s.run(app, "none", "lru", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}
		tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)

		prof, err := layout.ProfileFromTrace(st.app.Prog, tr)
		if err != nil {
			return nil, err
		}
		optProg, err := layout.Optimize(st.app.Prog, prof, layout.DefaultOptions())
		if err != nil {
			return nil, err
		}
		layoutOnly, err := core.RunPlan(optProg, tr, tcfg, nil)
		if err != nil {
			return nil, err
		}

		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		a2, err := core.Analyze(optProg, tr, acfg)
		if err != nil {
			return nil, err
		}
		tuned, err := core.TuneParallel(a2, tr, tcfg, s.tuneOpts(app, 0))
		if err != nil {
			return nil, err
		}
		both, err := core.RunPlan(optProg, tr, tcfg, tuned.BestPlan)
		if err != nil {
			return nil, err
		}
		s.logf("[%s] codelayout done", app)
		return []float64{
			speedupPct(base.Cycles, layoutOnly.Cycles),
			speedupPct(base.Cycles, ev.Best.Cycles),
			speedupPct(base.Cycles, both.Cycles),
		}, nil
	})
}

// CodeLayout compares Ripple against the code-layout-optimization family
// the paper's introduction cites (AutoFDO/BOLT-style function clustering
// and hot/cold block reordering) and shows the two compose: the layout
// optimizer and Ripple consume the same profile, and Ripple's analysis is
// re-run on the optimized image before injection, as a production pipeline
// would do.
func (s *Suite) CodeLayout() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		jobs = append(jobs, s.codeLayoutCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("codelayout", "Code layout (BOLT/C3-style) vs Ripple vs both (no prefetch, LRU, % speedup over baseline)",
		"application", "layout%", "ripple%", "layout+ripple%").WithMean()
	for _, app := range s.extApps() {
		row, err := s.cellRow(s.codeLayoutCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "layout packs hot lines; Ripple fixes replacement; gains stack when composed"
	return t, nil
}

// windowCaps are the MaxWindowBlocks settings of the WindowCap ablation.
var windowCaps = []int{64, 512, 2048}

// windowCapCell runs the analysis and tuning at one window cap.
func (s *Suite) windowCapCell(app string, wc int) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+2)
	return s.cell("windowcap", fmt.Sprintf("%s/%d", app, wc), cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		tr := s.source(st, 0)
		tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		acfg.MaxWindowBlocks = wc
		a, err := core.Analyze(st.app.Prog, tr, acfg)
		if err != nil {
			return nil, err
		}
		tuned, err := core.TuneParallel(a, tr, tcfg, s.tuneOpts(app, 0))
		if err != nil {
			return nil, err
		}
		s.logf("[%s] windowcap %d done", app, wc)
		return []float64{
			float64(a.Windows),
			float64(tuned.BestPlan.WindowsCovered),
			tuned.BestPoint().SpeedupPct,
		}, nil
	})
}

// WindowCap is the MaxWindowBlocks design-choice ablation DESIGN.md calls
// out: how far back from each ideal eviction the candidate scan walks.
// Too small and cue candidates near the victim's last use are lost; the
// default (2048) captures nearly all windows at tractable analysis cost.
func (s *Suite) WindowCap() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		for _, wc := range windowCaps {
			jobs = append(jobs, s.windowCapCell(app, wc))
		}
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("windowcap", "Analysis window cap ablation (no prefetch, LRU, tuned speedup %)",
		"app/cap", "windows", "covered@best", "speedup%")
	for _, app := range s.extApps() {
		for _, wc := range windowCaps {
			row, err := s.cellRow(s.windowCapCell(app, wc))
			if err != nil {
				return nil, err
			}
			t.AddRowF(fmt.Sprintf("%s/%d", app, wc), "%.2f", row...)
		}
	}
	return t, nil
}

// hintCostCell re-prices one application's tuned plan at three hint
// costs.
func (s *Suite) hintCostCell(app string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+8)
	return s.cell("hintcost", app, cost, func() ([]float64, error) {
		st, err := s.state(app)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, "none", "lru")
		if err != nil {
			return nil, err
		}
		var row []float64
		for _, hintCPI := range []float64{0, s.cfg.Params.HintCPI, s.cfg.Params.BaseCPI} {
			params := s.cfg.Params
			params.HintCPI = hintCPI
			tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
			tcfg.Params = params
			base, err := core.RunPlan(st.app.Prog, s.source(st, 0), tcfg, nil)
			if err != nil {
				return nil, err
			}
			res, err := core.RunPlan(st.app.Prog, s.source(st, 0), tcfg, ev.BestPlan)
			if err != nil {
				return nil, err
			}
			row = append(row, speedupPct(base.Cycles, res.Cycles))
		}
		return row, nil
	})
}

// HintCost is the hint-execution-cost sensitivity ablation: the frontend
// charges each executed invalidate HintCPI cycles (a dependency-free µop;
// default 0.12). The conclusions must not hinge on that constant, so the
// tuned plan is re-evaluated with the hint priced at zero and at a full
// average instruction (BaseCPI).
func (s *Suite) HintCost() (*Table, error) {
	var jobs []runner.Job
	for _, app := range s.extApps() {
		jobs = append(jobs, s.hintCostCell(app))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("hintcost", "Hint execution cost sensitivity (no prefetch, LRU, % speedup over LRU)",
		"application", "free%", "default%", "full-instr%").WithMean()
	for _, app := range s.extApps() {
		row, err := s.cellRow(s.hintCostCell(app))
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f", row...)
	}
	t.Note = "dynamic hint counts are ~0.2% of instructions, so even full-price hints barely move the result"
	return t, nil
}

// phasesCell builds one (possibly phased) variant of an application and
// measures LRU MPKI, Ripple's tuned speedup, and the ideal limit.
func (s *Suite) phasesCell(appName string, phased bool) runner.Job {
	variant := "steady"
	if phased {
		variant = "phased"
	}
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+3)
	return s.cell("phases", appName+"/"+variant, cost, func() ([]float64, error) {
		model, ok := workload.ByName(appName)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown app %q", appName)
		}
		m := model
		if phased {
			m.PhaseRequests = 60
			m.Name = appName + "-phased"
		}
		tcfg := s.tuneCfg("none", "lru", frontend.HintInvalidate)
		app, err := workload.Build(m)
		if err != nil {
			return nil, err
		}
		tr := app.Stream(0, s.cfg.TraceBlocks)
		newOpts := func() (frontend.Options, error) {
			pol, err := replacement.New("lru")
			if err != nil {
				return frontend.Options{}, err
			}
			return frontend.Options{Policy: pol, WarmupBlocks: s.cfg.WarmupBlocks}, nil
		}
		opts, err := newOpts()
		if err != nil {
			return nil, err
		}
		base, err := frontend.Run(s.cfg.Params, app.Prog, tr, opts)
		if err != nil {
			return nil, err
		}
		ideal, err := opt.SimulateSource(frontend.AccessEvents(s.cfg.Params, app.Prog, tr, newOpts),
			s.cfg.Params.L1I, opt.ModeDemandMIN, false)
		if err != nil {
			return nil, err
		}
		idealMisses := ideal.DemandMisses
		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		a, err := core.Analyze(app.Prog, tr, acfg)
		if err != nil {
			return nil, err
		}
		tuned, err := core.TuneParallel(a, tr, tcfg, s.tuneOpts(m.Name, 0))
		if err != nil {
			return nil, err
		}
		s.logf("[%s] phases %s done", appName, variant)
		return []float64{
			base.MPKI(),
			tuned.BestPoint().SpeedupPct,
			speedupPct(base.Cycles, idealCyclesFrom(base, idealMisses)),
		}, nil
	})
}

// Phases exercises the dynamic reuse-distance variance the paper blames
// for static classifiers' failure (Sec. II-D): a phased variant of each
// application rotates its request popularity every 60 requests, so the
// same lines are cache-friendly in one phase and cache-averse in the
// next. Ripple's profile covers all phases and its cue probabilities stay
// predictive, so the gains survive phase churn.
func (s *Suite) Phases() (*Table, error) {
	var jobs []runner.Job
	for _, appName := range s.extApps() {
		for _, phased := range []bool{false, true} {
			jobs = append(jobs, s.phasesCell(appName, phased))
		}
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("phases", "Phase-varying request mixes (no prefetch, LRU)",
		"app/variant", "lru-mpki", "ripple%", "ideal%")
	for _, appName := range s.extApps() {
		for _, phased := range []bool{false, true} {
			row, err := s.cellRow(s.phasesCell(appName, phased))
			if err != nil {
				return nil, err
			}
			label := appName + "/steady"
			if phased {
				label = appName + "/phased"
			}
			t.AddRowF(label, "%.2f", row...)
		}
	}
	t.Note = "Ripple's profile spans the phases, so cue probabilities remain predictive"
	return t, nil
}
