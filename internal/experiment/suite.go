package experiment

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"ripple/internal/blockseq"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/opt"
	"ripple/internal/prefetch"
	"ripple/internal/replacement"
	"ripple/internal/rippled"
	"ripple/internal/runner"
	"ripple/internal/workload"
)

// Config parameterizes a whole experiment suite run.
type Config struct {
	// Params is the simulated machine (Table II by default).
	Params frontend.Params
	// TraceBlocks is the per-application trace length in executed basic
	// blocks (the paper traces 100M instructions; the default here, 600k
	// blocks ≈ 7M instructions, reproduces the shapes at CI-friendly
	// cost). WarmupBlocks are executed but excluded from measurement.
	TraceBlocks  int
	WarmupBlocks int
	// Apps restricts the suite to a subset of the nine applications.
	Apps []string
	// Thresholds overrides the Ripple tuning sweep.
	Thresholds []float64
	// Log receives progress lines (nil silences them).
	Log io.Writer
	// Workers bounds how many simulation jobs run concurrently; <= 0
	// uses GOMAXPROCS. Every job is deterministic and self-seeded, so
	// results are bit-identical for any worker count.
	Workers int
	// CacheDir, when non-empty, persists every job result in a
	// content-addressed store so repeated and partially-overlapping
	// suite runs across processes are incremental. Empty disables
	// persistence (results are still memoized in-process).
	CacheDir string
	// StoreURL, when non-empty, persists results through a shared
	// rippled coordinator instead of a local directory: many suite
	// processes then drain one sweep, each duplicate signature computed
	// exactly once fleet-wide. Mutually exclusive with CacheDir.
	StoreURL string
	// Retries bounds re-executions of transiently failing jobs
	// (runner.Transient); 0 disables retry.
	Retries int
	// Oracle selects the engine behind every oracle miss count:
	// OracleExact (default) replays the full two-pass streaming Belady
	// engine; OracleSampled estimates MIN and Demand-MIN from a
	// single-pass sampled-set OPTGen model (pollute-evict always uses the
	// exact engine — it has no interval formulation).
	Oracle string
	// OracleSampleSets bounds the sampled engine's set budget (default
	// opt.DefaultSampleSets). Ignored under OracleExact.
	OracleSampleSets int
}

// Oracle engine names for Config.Oracle.
const (
	OracleExact   = "exact"
	OracleSampled = "sampled"
)

// DefaultConfig returns the standard suite configuration.
func DefaultConfig() Config {
	return Config{
		Params:       frontend.DefaultParams(),
		TraceBlocks:  600_000,
		WarmupBlocks: 200_000,
		Apps:         workload.Names(),
		Thresholds:   []float64{0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95},
		Log:          os.Stderr,
	}
}

// normalize fills zero-valued fields with their defaults. It is the one
// place default resolution happens: New applies it, and callers
// (cmd/rippleexp, benchmarks) must leave unset fields zero rather than
// re-deriving defaults themselves.
func (c Config) normalize() Config {
	def := DefaultConfig()
	if c.Params.L1I.SizeBytes == 0 {
		c.Params = def.Params
	}
	if c.TraceBlocks == 0 {
		c.TraceBlocks = def.TraceBlocks
	}
	if c.WarmupBlocks == 0 {
		c.WarmupBlocks = c.TraceBlocks / 3
	}
	if len(c.Apps) == 0 {
		c.Apps = def.Apps
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = def.Thresholds
	}
	if c.Oracle == "" {
		c.Oracle = OracleExact
	}
	if c.OracleSampleSets == 0 {
		c.OracleSampleSets = opt.DefaultSampleSets
	}
	return c
}

// Suite runs experiments against a shared result cache, so e.g. Fig. 7
// and Fig. 8 (speedup and MPKI of the same configurations) cost one set
// of simulations. Simulations execute as runner jobs: independent cells
// fan out across a worker pool, results are memoized in-process and —
// with CacheDir set — persisted content-addressed on disk, keyed by the
// full run signature (workload-generator version, machine params, trace
// length, warmup, app, policy, prefetcher, thresholds).
type Suite struct {
	cfg  Config
	pool *runner.Pool
	log  io.Writer // serialized; shared with the pool
	ctx  context.Context
	base string // signature prefix shared by every job of this config

	mu   sync.Mutex
	apps map[string]*appState
}

// appState holds the per-application substrate that cannot (or need not)
// be persisted: the built program and the eviction analysis, which
// carries live *program.Program references. Traces are never
// materialized: jobs pull blocks from replayable workload stream
// sources. All fields build lazily and at most once; jobs running on
// different workers share them read-only.
type appState struct {
	model workload.Model

	once sync.Once
	app  *workload.App
	err  error

	aonce    sync.Once
	analysis *core.Analysis
	aerr     error
}

// New builds a suite. Invalid app names surface on first use.
func New(cfg Config) *Suite {
	cfg = cfg.normalize()
	var store runner.StoreBackend
	switch {
	case cfg.StoreURL != "":
		cl, err := rippled.NewClient(cfg.StoreURL, rippled.ClientOptions{Log: cfg.Log})
		if err != nil {
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "experiment: remote result store disabled: %v\n", err)
			}
		} else {
			store = cl
		}
	case cfg.CacheDir != "":
		st, err := runner.OpenStore(cfg.CacheDir)
		if err != nil {
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "experiment: result cache disabled: %v\n", err)
			}
		} else {
			store = st
		}
	}
	pool := runner.New(runner.Options{Workers: cfg.Workers, Store: store, Log: cfg.Log, Retries: cfg.Retries})
	s := &Suite{
		cfg:  cfg,
		pool: pool,
		log:  pool.LogWriter(),
		ctx:  context.Background(),
		apps: make(map[string]*appState),
	}
	s.base = fmt.Sprintf("rexp1|wl=%s|params=%+v|blocks=%d|warmup=%d",
		workload.GeneratorVersion, cfg.Params, cfg.TraceBlocks, cfg.WarmupBlocks)
	return s
}

// Apps returns the application names the suite covers, in figure order.
func (s *Suite) Apps() []string { return s.cfg.Apps }

// Stats reports what the underlying job runner has done so far (jobs
// computed, store hits, coalesced calls, summed simulation wall time).
func (s *Suite) Stats() runner.Stats { return s.pool.Stats() }

func (s *Suite) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.log, format+"\n", args...)
	}
}

// --- job signatures ---------------------------------------------------

func (s *Suite) thSig() string { return fmt.Sprintf("%v", s.cfg.Thresholds) }

func (s *Suite) runSig(app, prefetcher, policy string, accuracy bool) string {
	return fmt.Sprintf("%s|run|app=%s|pf=%s|pol=%s|acc=%t", s.base, app, prefetcher, policy, accuracy)
}

// oracleSigFor keys oracle results. The exact engine keeps the original
// signature shape so result stores warmed before the streaming refactor
// stay valid; the sampled engine (a different estimator, not a different
// computation of the same number) gets its own keyspace.
func (s *Suite) oracleSigFor(app, prefetcher, engine string) string {
	sig := fmt.Sprintf("%s|oracle|app=%s|pf=%s", s.base, app, prefetcher)
	if engine != OracleExact {
		sig += fmt.Sprintf("|engine=%s|sets=%d", engine, s.cfg.OracleSampleSets)
	}
	return sig
}

func (s *Suite) rippleSig(app, prefetcher, policy string) string {
	return fmt.Sprintf("%s|ripple|th=%s|app=%s|pf=%s|pol=%s", s.base, s.thSig(), app, prefetcher, policy)
}

// oracleTag marks signatures of results computed under a non-default
// oracle engine, so sampled estimates never collide with exact counts in
// a warm store. Exact (the default) keeps the tag empty — pre-existing
// stores stay hittable.
func (s *Suite) oracleTag() string {
	if s.cfg.Oracle == OracleExact {
		return ""
	}
	return fmt.Sprintf("|oracle=%s:%d", s.cfg.Oracle, s.cfg.OracleSampleSets)
}

func (s *Suite) cellSig(exp, key string) string {
	return fmt.Sprintf("%s|cell|th=%s|exp=%s|key=%s%s", s.base, s.thSig(), exp, key, s.oracleTag())
}

func (s *Suite) tableSig(id string) string {
	return fmt.Sprintf("%s|table|th=%s|apps=%s|id=%s%s", s.base, s.thSig(), strings.Join(s.cfg.Apps, ","), id, s.oracleTag())
}

// warm fans a batch of jobs out across the worker pool before table
// assembly; assembly then reads every cell from the in-process cache.
func (s *Suite) warm(jobs ...runner.Job) error { return s.pool.RunAll(s.ctx, jobs) }

// --- per-application substrate ----------------------------------------

// state lazily builds the application and its state slot; builds for
// different applications proceed in parallel, each at most once.
func (s *Suite) state(name string) (*appState, error) {
	s.mu.Lock()
	st, ok := s.apps[name]
	if !ok {
		m, known := workload.ByName(name)
		if !known {
			s.mu.Unlock()
			return nil, fmt.Errorf("experiment: unknown application %q", name)
		}
		st = &appState{model: m}
		s.apps[name] = st
	}
	s.mu.Unlock()
	st.once.Do(func() {
		t0 := time.Now()
		st.app, st.err = workload.Build(st.model)
		if st.err == nil {
			s.logf("[%s] built (%d blocks of code) in %v", name, st.app.Prog.NumBlocks(), time.Since(t0).Round(time.Millisecond))
		}
	})
	if st.err != nil {
		return nil, st.err
	}
	return st, nil
}

// source returns the replayable block source for one input
// configuration. Workload streams are deterministic per (app, input,
// seed): every Open replays exactly the blocks the old materialized
// trace held, so persisted result signatures stay valid while the
// suite's steady-state memory drops from O(trace) to O(1).
func (s *Suite) source(st *appState, input int) blockseq.Source {
	return st.app.Stream(input, s.cfg.TraceBlocks)
}

// analysisFor lazily runs Ripple's eviction analysis on the input-#0
// trace. The analysis holds live program references, so it is memoized
// in-process only; jobs that depend on it persist their own outputs.
func (s *Suite) analysisFor(name string) (*core.Analysis, error) {
	st, err := s.state(name)
	if err != nil {
		return nil, err
	}
	st.aonce.Do(func() {
		acfg := core.DefaultAnalysisConfig()
		acfg.L1I = s.cfg.Params.L1I
		t0 := time.Now()
		st.analysis, st.aerr = core.Analyze(st.app.Prog, s.source(st, 0), acfg)
		if st.aerr == nil {
			s.logf("[%s] eviction analysis: %d windows (%v)", name, st.analysis.Windows, time.Since(t0).Round(time.Millisecond))
		}
	})
	return st.analysis, st.aerr
}

// --- simulation cells (runner jobs) -----------------------------------

// runJob simulates one (app, prefetcher, policy) cell on the input-#0
// trace of the unmodified binary.
func (s *Suite) runJob(name, prefetcher, policy string, accuracy bool) runner.Job {
	cost := float64(s.cfg.TraceBlocks)
	if accuracy {
		cost *= 1.5
	}
	label := fmt.Sprintf("run %s %s/%s", name, prefetcher, policy)
	return runner.NewJob(s.runSig(name, prefetcher, policy, accuracy), label, cost,
		func(context.Context) (*frontend.Result, error) {
			st, err := s.state(name)
			if err != nil {
				return nil, err
			}
			pol, err := replacement.New(policy)
			if err != nil {
				return nil, err
			}
			pf, err := prefetch.New(prefetcher, st.app.Prog)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			r, err := frontend.Run(s.cfg.Params, st.app.Prog, s.source(st, 0), frontend.Options{
				Policy:          pol,
				Prefetcher:      pf,
				MeasureAccuracy: accuracy,
				WarmupBlocks:    s.cfg.WarmupBlocks,
			})
			if err != nil {
				return nil, err
			}
			s.logf("[%s] %s/%s: MPKI %.2f, IPC %.3f (%v)", name, prefetcher, policy, r.MPKI(), r.IPC(), time.Since(t0).Round(time.Millisecond))
			return &r, nil
		})
}

// run executes (or fetches) one cell through the runner.
func (s *Suite) run(name, prefetcher, policy string, accuracy bool) (frontend.Result, error) {
	v, err := s.pool.Do(s.ctx, s.runJob(name, prefetcher, policy, accuracy))
	if err != nil {
		return frontend.Result{}, err
	}
	return *(v.(*frontend.Result)), nil
}

// oracleCounts is the persisted outcome of replaying the offline oracle
// replacement modes over the access stream recorded under LRU with one
// prefetcher.
type oracleCounts struct {
	Min       uint64
	DemandMin uint64
	Pollute   uint64
	LRUMisses uint64
	LRUResult frontend.Result
}

// oracleJob evaluates the oracle replacement modes over the access
// stream of an LRU run with one prefetcher, using the engine the suite
// was configured with. The stream is never materialized: the run is
// replayed through frontend.AccessEvents as many times as the engine
// needs passes, so the job's memory stays O(1) in the trace length.
func (s *Suite) oracleJob(name, prefetcher string) runner.Job {
	return s.oracleJobFor(name, prefetcher, s.cfg.Oracle)
}

// oracleJobFor is oracleJob with an explicit engine, so the engine
// comparison table can evaluate both against the same streams.
func (s *Suite) oracleJobFor(name, prefetcher, engine string) runner.Job {
	label := fmt.Sprintf("oracle[%s] %s %s", engine, name, prefetcher)
	return runner.NewJob(s.oracleSigFor(name, prefetcher, engine), label, 2*float64(s.cfg.TraceBlocks),
		func(context.Context) (*oracleCounts, error) {
			st, err := s.state(name)
			if err != nil {
				return nil, err
			}
			newOpts := func() (frontend.Options, error) {
				pol, err := replacement.New("lru")
				if err != nil {
					return frontend.Options{}, err
				}
				pf, err := prefetch.New(prefetcher, st.app.Prog)
				if err != nil {
					return frontend.Options{}, err
				}
				return frontend.Options{
					Policy:       pol,
					Prefetcher:   pf,
					WarmupBlocks: s.cfg.WarmupBlocks,
				}, nil
			}
			opts, err := newOpts()
			if err != nil {
				return nil, err
			}
			r, err := frontend.Run(s.cfg.Params, st.app.Prog, s.source(st, 0), opts)
			if err != nil {
				return nil, err
			}
			oc := &oracleCounts{
				LRUMisses: r.L1I.DemandMisses + r.LateMisses,
				LRUResult: r,
			}
			l1i := s.cfg.Params.L1I
			events := frontend.AccessEvents(s.cfg.Params, st.app.Prog, s.source(st, 0), newOpts)
			switch engine {
			case OracleExact:
				modes := []opt.Mode{opt.ModeMIN, opt.ModeDemandMIN, opt.ModePolluteEvict}
				rs, err := opt.SimulateSourceModes(events, l1i, modes, false)
				if err != nil {
					return nil, err
				}
				oc.Min, oc.DemandMin, oc.Pollute = rs[0].DemandMisses, rs[1].DemandMisses, rs[2].DemandMisses
			case OracleSampled:
				gc := opt.OPTGenConfig{SampleSets: s.cfg.OracleSampleSets}
				min, err := opt.NewOPTGen(l1i, opt.ModeMIN, gc)
				if err != nil {
					return nil, err
				}
				dmin, err := opt.NewOPTGen(l1i, opt.ModeDemandMIN, gc)
				if err != nil {
					return nil, err
				}
				if err := opt.DriveOPTGen(events, min, dmin); err != nil {
					return nil, err
				}
				oc.Min = min.Result().EstimatedDemandMisses()
				oc.DemandMin = dmin.Result().EstimatedDemandMisses()
				// Pollute-evict has no interval formulation: always exact.
				pr, err := opt.SimulateSource(events, l1i, opt.ModePolluteEvict, false)
				if err != nil {
					return nil, err
				}
				oc.Pollute = pr.DemandMisses
			default:
				return nil, fmt.Errorf("experiment: unknown oracle engine %q", engine)
			}
			s.logf("[%s] %s oracles[%s]: min=%d demand-min=%d pollute=%d (LRU: %d)",
				name, prefetcher, engine, oc.Min, oc.DemandMin, oc.Pollute, oc.LRUMisses)
			return oc, nil
		})
}

func (s *Suite) oracle(name, prefetcher string) (*oracleCounts, error) {
	return s.oracleFor(name, prefetcher, s.cfg.Oracle)
}

// oracleFor runs (or fetches) the oracle cell under an explicit engine.
func (s *Suite) oracleFor(name, prefetcher, engine string) (*oracleCounts, error) {
	v, err := s.pool.Do(s.ctx, s.oracleJobFor(name, prefetcher, engine))
	if err != nil {
		return nil, err
	}
	return v.(*oracleCounts), nil
}

// oracleMissCount returns the demand-miss count of one offline oracle
// replacement mode (MIN, Demand-MIN, or pollute-evict) replayed over the
// stream recorded under LRU with the given prefetcher.
func (s *Suite) oracleMissCount(name, prefetcher string, mode opt.Mode) (uint64, error) {
	oc, err := s.oracle(name, prefetcher)
	if err != nil {
		return 0, err
	}
	switch mode {
	case opt.ModeMIN:
		return oc.Min, nil
	case opt.ModeDemandMIN:
		return oc.DemandMin, nil
	case opt.ModePolluteEvict:
		return oc.Pollute, nil
	}
	return 0, fmt.Errorf("experiment: unknown oracle mode %v", mode)
}

// idealReplacementCycles estimates the cycle count of the LRU run had it
// made ideal (Demand-MIN) replacement decisions: same instruction stream,
// ideal misses charged at the run's observed average miss penalty.
func (s *Suite) idealReplacementCycles(name, prefetcher string) (uint64, error) {
	base, err := s.run(name, prefetcher, "lru", false)
	if err != nil {
		return 0, err
	}
	misses, err := s.oracleMissCount(name, prefetcher, opt.ModeDemandMIN)
	if err != nil {
		return 0, err
	}
	return idealCyclesFrom(base, misses), nil
}

// idealCyclesFrom rescales a run's stall cycles to an ideal miss count.
func idealCyclesFrom(base frontend.Result, idealMisses uint64) uint64 {
	observed := base.L1I.DemandMisses + base.LateMisses
	if observed == 0 {
		return base.Cycles
	}
	penalty := float64(base.StallCycles) / float64(observed)
	return base.Cycles - base.StallCycles + uint64(float64(idealMisses)*penalty)
}

// streamID is the stable content identity of one workload stream:
// generator version, model name, input index, and trace length pin the
// exact block sequence every Open replays, so tune jobs keyed by it stay
// hittable across processes (and by other tools tuning the same stream).
func (s *Suite) streamID(model string, input int) string {
	return fmt.Sprintf("wl=%s|app=%s|input=%d|blocks=%d", workload.GeneratorVersion, model, input, s.cfg.TraceBlocks)
}

// tuneOpts is the parallel-tuning substrate for a sweep simulated on one
// workload stream: per-threshold sub-jobs share the suite's worker pool
// (a runner.Group lends the calling cell's slot, so nested fan-out cannot
// deadlock) and land in the persistent store under the stream's identity.
func (s *Suite) tuneOpts(model string, input int) core.ParallelOptions {
	return core.ParallelOptions{Pool: s.pool, Ctx: s.ctx, SourceID: s.streamID(model, input)}
}

// tuneCfg assembles the core.TuneConfig for one cell.
func (s *Suite) tuneCfg(prefetcher, policy string, hints frontend.HintMode) core.TuneConfig {
	return core.TuneConfig{
		Params:       s.cfg.Params,
		Policy:       policy,
		Prefetcher:   prefetcher,
		Hints:        hints,
		Thresholds:   s.cfg.Thresholds,
		WarmupBlocks: s.cfg.WarmupBlocks,
	}
}

// rippleEval is the persisted outcome of the full Ripple pipeline for
// one (app, prefetcher, policy) cell: the tuned threshold curve, the
// winning plan, and a re-evaluation of that plan with accuracy
// instrumentation.
type rippleEval struct {
	Curve   []core.ThresholdPoint
	BestIdx int
	// BestPlan is the winning injection plan (needed by the ablations
	// that re-execute it under other configurations).
	BestPlan *core.Plan
	// Best is the accuracy-instrumented evaluation of the winning plan
	// (Figs. 9-12).
	Best frontend.Result
	// StaticOv is the static instruction overhead of injection (%).
	StaticOv float64
	// AnalysisWindows is the eviction-window count of the profile the
	// plan was computed from.
	AnalysisWindows int
}

// BestPoint returns the winning curve point.
func (ev *rippleEval) BestPoint() core.ThresholdPoint { return ev.Curve[ev.BestIdx] }

// rippleJob runs the full Ripple pipeline for one cell: analysis,
// threshold tuning, and an accuracy-instrumented evaluation of the
// winning plan.
func (s *Suite) rippleJob(name, prefetcher, policy string) runner.Job {
	cost := float64(s.cfg.TraceBlocks) * float64(len(s.cfg.Thresholds)+3)
	label := fmt.Sprintf("ripple %s %s/%s", name, prefetcher, policy)
	return runner.NewJob(s.rippleSig(name, prefetcher, policy), label, cost,
		func(context.Context) (*rippleEval, error) {
			st, err := s.state(name)
			if err != nil {
				return nil, err
			}
			a, err := s.analysisFor(name)
			if err != nil {
				return nil, err
			}
			tcfg := s.tuneCfg(prefetcher, policy, frontend.HintInvalidate)
			t0 := time.Now()
			tune, err := core.TuneParallel(a, s.source(st, 0), tcfg, s.tuneOpts(name, 0))
			if err != nil {
				return nil, err
			}
			// Re-evaluate the winner with accuracy instrumentation for
			// Figs. 9-12.
			tcfg.MeasureAccuracy = true
			best, err := core.RunPlan(st.app.Prog, s.source(st, 0), tcfg, tune.BestPlan)
			if err != nil {
				return nil, err
			}
			ev := &rippleEval{
				Curve:           tune.Curve,
				BestIdx:         tune.Best,
				BestPlan:        tune.BestPlan,
				Best:            best,
				AnalysisWindows: a.Windows,
			}
			injected := tune.BestPlan.ApplyPreservingLayout(st.app.Prog)
			if orig := st.app.Prog.StaticInstrs(); orig > 0 {
				ev.StaticOv = float64(injected.StaticInstrs()-orig) / float64(orig) * 100
			}
			s.logf("[%s] ripple-%s/%s: th=%.2f speedup %.2f%%, coverage %.0f%% (%v)",
				name, policy, prefetcher, ev.BestPoint().Threshold, ev.BestPoint().SpeedupPct,
				best.Coverage()*100, time.Since(t0).Round(time.Second))
			return ev, nil
		})
}

// rippleFor runs (or fetches) the full Ripple pipeline for one cell.
func (s *Suite) rippleFor(name, prefetcher, policy string) (*rippleEval, error) {
	v, err := s.pool.Do(s.ctx, s.rippleJob(name, prefetcher, policy))
	if err != nil {
		return nil, err
	}
	return v.(*rippleEval), nil
}

// cell wraps one experiment's per-application tail computation as a
// persistable job returning a numeric row. Cells may freely call
// s.run/s.rippleFor/s.oracle — nested job requests coalesce through the
// pool and compute inline on the calling worker, so they cannot
// deadlock.
func (s *Suite) cell(exp, key string, cost float64, f func() ([]float64, error)) runner.Job {
	return runner.NewJob(s.cellSig(exp, key), exp+" "+key, cost,
		func(context.Context) (*[]float64, error) {
			row, err := f()
			if err != nil {
				return nil, err
			}
			return &row, nil
		})
}

// cellRow executes (or fetches) a cell and returns its row.
func (s *Suite) cellRow(j runner.Job) ([]float64, error) {
	v, err := s.pool.Do(s.ctx, j)
	if err != nil {
		return nil, err
	}
	return *(v.(*[]float64)), nil
}

// --- warm-up job enumeration ------------------------------------------

// crossJobs enumerates the run jobs of an apps × prefetchers × policies
// cross-product.
func (s *Suite) crossJobs(apps, prefetchers, policies []string) []runner.Job {
	var jobs []runner.Job
	for _, app := range apps {
		for _, pf := range prefetchers {
			for _, pol := range policies {
				jobs = append(jobs, s.runJob(app, pf, pol, false))
			}
		}
	}
	return jobs
}

// oracleJobs enumerates oracle jobs for apps × prefetchers.
func (s *Suite) oracleJobs(apps, prefetchers []string) []runner.Job {
	var jobs []runner.Job
	for _, app := range apps {
		for _, pf := range prefetchers {
			jobs = append(jobs, s.oracleJob(app, pf))
		}
	}
	return jobs
}

// rippleJobs enumerates Ripple pipeline jobs for apps × prefetchers ×
// policies.
func (s *Suite) rippleJobs(apps, prefetchers, policies []string) []runner.Job {
	var jobs []runner.Job
	for _, app := range apps {
		for _, pf := range prefetchers {
			for _, pol := range policies {
				jobs = append(jobs, s.rippleJob(app, pf, pol))
			}
		}
	}
	return jobs
}

// speedupPct converts a cycle pair into percentage speedup.
func speedupPct(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return (float64(baseCycles)/float64(cycles) - 1) * 100
}
