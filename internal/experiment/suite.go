package experiment

import (
	"fmt"
	"io"
	"os"
	"time"

	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/opt"
	"ripple/internal/prefetch"
	"ripple/internal/program"
	"ripple/internal/replacement"
	"ripple/internal/workload"
)

// Config parameterizes a whole experiment suite run.
type Config struct {
	// Params is the simulated machine (Table II by default).
	Params frontend.Params
	// TraceBlocks is the per-application trace length in executed basic
	// blocks (the paper traces 100M instructions; the default here, 600k
	// blocks ≈ 7M instructions, reproduces the shapes at CI-friendly
	// cost). WarmupBlocks are executed but excluded from measurement.
	TraceBlocks  int
	WarmupBlocks int
	// Apps restricts the suite to a subset of the nine applications.
	Apps []string
	// Thresholds overrides the Ripple tuning sweep.
	Thresholds []float64
	// Log receives progress lines (nil silences them).
	Log io.Writer
}

// DefaultConfig returns the standard suite configuration.
func DefaultConfig() Config {
	return Config{
		Params:       frontend.DefaultParams(),
		TraceBlocks:  600_000,
		WarmupBlocks: 200_000,
		Apps:         workload.Names(),
		Thresholds:   []float64{0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95},
		Log:          os.Stderr,
	}
}

// Suite runs experiments against a shared, lazily populated result cache,
// so e.g. Fig. 7 and Fig. 8 (speedup and MPKI of the same configurations)
// cost one set of simulations.
type Suite struct {
	cfg  Config
	apps map[string]*appState
}

type runKey struct {
	prefetcher string
	policy     string
	accuracy   bool
}

type rippleKey struct {
	prefetcher string
	policy     string
}

// rippleEval is the cached outcome of the full Ripple pipeline for one
// (app, prefetcher, policy) cell: the tuned plan plus a re-evaluation of
// the winning plan with accuracy instrumentation.
type rippleEval struct {
	analysis *core.Analysis
	tune     *core.TuneResult
	best     frontend.Result
	staticOv float64
}

type appState struct {
	model  workload.Model
	app    *workload.App
	traces map[int][]program.BlockID

	analysis *core.Analysis
	runs     map[runKey]frontend.Result
	// oracleMisses caches, per prefetcher, the demand-miss counts of the
	// offline oracle modes replayed over the stream recorded under LRU.
	oracleMisses map[string]map[opt.Mode]uint64
	ripple       map[rippleKey]*rippleEval
}

// New builds a suite. Invalid app names surface on first use.
func New(cfg Config) *Suite {
	def := DefaultConfig()
	if cfg.Params.L1I.SizeBytes == 0 {
		cfg.Params = def.Params
	}
	if cfg.TraceBlocks == 0 {
		cfg.TraceBlocks = def.TraceBlocks
	}
	if cfg.WarmupBlocks == 0 {
		cfg.WarmupBlocks = cfg.TraceBlocks / 3
	}
	if len(cfg.Apps) == 0 {
		cfg.Apps = def.Apps
	}
	if len(cfg.Thresholds) == 0 {
		cfg.Thresholds = def.Thresholds
	}
	return &Suite{cfg: cfg, apps: make(map[string]*appState)}
}

// Apps returns the application names the suite covers, in figure order.
func (s *Suite) Apps() []string { return s.cfg.Apps }

func (s *Suite) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// state lazily builds the application and its input-#0 trace.
func (s *Suite) state(name string) (*appState, error) {
	if st, ok := s.apps[name]; ok {
		return st, nil
	}
	m, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown application %q", name)
	}
	t0 := time.Now()
	app, err := workload.Build(m)
	if err != nil {
		return nil, err
	}
	st := &appState{
		model:        m,
		app:          app,
		traces:       map[int][]program.BlockID{},
		runs:         map[runKey]frontend.Result{},
		oracleMisses: map[string]map[opt.Mode]uint64{},
		ripple:       map[rippleKey]*rippleEval{},
	}
	s.apps[name] = st
	s.logf("[%s] built (%d blocks of code) in %v", name, app.Prog.NumBlocks(), time.Since(t0).Round(time.Millisecond))
	return st, nil
}

// trace lazily synthesizes the trace for one input configuration.
func (s *Suite) trace(st *appState, input int) []program.BlockID {
	if tr, ok := st.traces[input]; ok {
		return tr
	}
	tr := st.app.Trace(input, s.cfg.TraceBlocks)
	st.traces[input] = tr
	return tr
}

// run simulates (and caches) one (app, prefetcher, policy) cell on the
// input-#0 trace of the unmodified binary.
func (s *Suite) run(name, prefetcher, policy string, accuracy bool) (frontend.Result, error) {
	st, err := s.state(name)
	if err != nil {
		return frontend.Result{}, err
	}
	key := runKey{prefetcher: prefetcher, policy: policy, accuracy: accuracy}
	if r, ok := st.runs[key]; ok {
		return r, nil
	}
	pol, err := replacement.New(policy)
	if err != nil {
		return frontend.Result{}, err
	}
	pf, err := prefetch.New(prefetcher, st.app.Prog)
	if err != nil {
		return frontend.Result{}, err
	}
	t0 := time.Now()
	r, err := frontend.Run(s.cfg.Params, st.app.Prog, s.trace(st, 0), frontend.Options{
		Policy:          pol,
		Prefetcher:      pf,
		MeasureAccuracy: accuracy,
		WarmupBlocks:    s.cfg.WarmupBlocks,
	})
	if err != nil {
		return frontend.Result{}, err
	}
	st.runs[key] = r
	s.logf("[%s] %s/%s: MPKI %.2f, IPC %.3f (%v)", name, prefetcher, policy, r.MPKI(), r.IPC(), time.Since(t0).Round(time.Millisecond))
	return r, nil
}

// oracleMissCount replays an offline oracle replacement mode (MIN,
// Demand-MIN, or pollute-evict) over the access stream recorded under LRU
// with the given prefetcher, returning the oracle's demand-miss count. The
// stream is recorded once per prefetcher and all three modes are evaluated
// together so it never has to be kept around.
func (s *Suite) oracleMissCount(name, prefetcher string, mode opt.Mode) (uint64, error) {
	st, err := s.state(name)
	if err != nil {
		return 0, err
	}
	if byMode, ok := st.oracleMisses[prefetcher]; ok {
		return byMode[mode], nil
	}
	pol, _ := replacement.New("lru")
	pf, err := prefetch.New(prefetcher, st.app.Prog)
	if err != nil {
		return 0, err
	}
	r, err := frontend.Run(s.cfg.Params, st.app.Prog, s.trace(st, 0), frontend.Options{
		Policy:       pol,
		Prefetcher:   pf,
		RecordStream: true,
		WarmupBlocks: s.cfg.WarmupBlocks,
	})
	if err != nil {
		return 0, err
	}
	byMode := make(map[opt.Mode]uint64, 3)
	for _, m := range []opt.Mode{opt.ModeMIN, opt.ModeDemandMIN, opt.ModePolluteEvict} {
		byMode[m] = opt.Simulate(r.Stream, s.cfg.Params.L1I, m, false).DemandMisses
	}
	st.oracleMisses[prefetcher] = byMode
	s.logf("[%s] %s oracles: min=%d demand-min=%d pollute=%d (LRU: %d)",
		name, prefetcher, byMode[opt.ModeMIN], byMode[opt.ModeDemandMIN],
		byMode[opt.ModePolluteEvict], r.L1I.DemandMisses+r.LateMisses)
	return byMode[mode], nil
}

// idealReplacementCycles estimates the cycle count of the LRU run had it
// made ideal (Demand-MIN) replacement decisions: same instruction stream,
// ideal misses charged at the run's observed average miss penalty.
func (s *Suite) idealReplacementCycles(name, prefetcher string) (uint64, error) {
	base, err := s.run(name, prefetcher, "lru", false)
	if err != nil {
		return 0, err
	}
	misses, err := s.oracleMissCount(name, prefetcher, opt.ModeDemandMIN)
	if err != nil {
		return 0, err
	}
	return idealCyclesFrom(base, misses), nil
}

// idealCyclesFrom rescales a run's stall cycles to an ideal miss count.
func idealCyclesFrom(base frontend.Result, idealMisses uint64) uint64 {
	observed := base.L1I.DemandMisses + base.LateMisses
	if observed == 0 {
		return base.Cycles
	}
	penalty := float64(base.StallCycles) / float64(observed)
	return base.Cycles - base.StallCycles + uint64(float64(idealMisses)*penalty)
}

// analysis lazily runs Ripple's eviction analysis on the input-#0 trace.
func (s *Suite) analysisFor(name string) (*core.Analysis, error) {
	st, err := s.state(name)
	if err != nil {
		return nil, err
	}
	if st.analysis != nil {
		return st.analysis, nil
	}
	acfg := core.DefaultAnalysisConfig()
	acfg.L1I = s.cfg.Params.L1I
	t0 := time.Now()
	a, err := core.Analyze(st.app.Prog, s.trace(st, 0), acfg)
	if err != nil {
		return nil, err
	}
	st.analysis = a
	s.logf("[%s] eviction analysis: %d windows (%v)", name, a.Windows, time.Since(t0).Round(time.Millisecond))
	return a, nil
}

// tuneCfg assembles the core.TuneConfig for one cell.
func (s *Suite) tuneCfg(prefetcher, policy string, hints frontend.HintMode) core.TuneConfig {
	return core.TuneConfig{
		Params:       s.cfg.Params,
		Policy:       policy,
		Prefetcher:   prefetcher,
		Hints:        hints,
		Thresholds:   s.cfg.Thresholds,
		WarmupBlocks: s.cfg.WarmupBlocks,
	}
}

// rippleFor runs (and caches) the full Ripple pipeline for one cell:
// analysis, threshold tuning, and an accuracy-instrumented evaluation of
// the winning plan.
func (s *Suite) rippleFor(name, prefetcher, policy string) (*rippleEval, error) {
	st, err := s.state(name)
	if err != nil {
		return nil, err
	}
	key := rippleKey{prefetcher: prefetcher, policy: policy}
	if ev, ok := st.ripple[key]; ok {
		return ev, nil
	}
	a, err := s.analysisFor(name)
	if err != nil {
		return nil, err
	}
	tcfg := s.tuneCfg(prefetcher, policy, frontend.HintInvalidate)
	t0 := time.Now()
	tune, err := core.Tune(a, s.trace(st, 0), tcfg)
	if err != nil {
		return nil, err
	}
	// Re-evaluate the winner with accuracy instrumentation for Figs. 9-12.
	tcfg.MeasureAccuracy = true
	best, err := core.RunPlan(st.app.Prog, s.trace(st, 0), tcfg, tune.BestPlan)
	if err != nil {
		return nil, err
	}
	injected := tune.BestPlan.ApplyPreservingLayout(st.app.Prog)
	ev := &rippleEval{analysis: a, tune: tune, best: best}
	if orig := st.app.Prog.StaticInstrs(); orig > 0 {
		ev.staticOv = float64(injected.StaticInstrs()-orig) / float64(orig) * 100
	}
	st.ripple[key] = ev
	s.logf("[%s] ripple-%s/%s: th=%.2f speedup %.2f%%, coverage %.0f%% (%v)",
		name, policy, prefetcher, tune.BestPoint().Threshold, tune.BestPoint().SpeedupPct,
		best.Coverage()*100, time.Since(t0).Round(time.Second))
	return ev, nil
}

// speedupPct converts a cycle pair into percentage speedup.
func speedupPct(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return (float64(baseCycles)/float64(cycles) - 1) * 100
}
