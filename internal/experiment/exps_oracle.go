package experiment

import (
	"math"

	"ripple/internal/runner"
)

// OracleEngines compares the two oracle engines on the same access
// streams: the exact two-pass streaming Belady replay against the
// single-pass sampled-set OPTGen estimate (at the suite's configured
// sample budget), for both MIN and Demand-MIN. The error columns
// characterize the sampling error the `-oracle sampled` mode trades for
// its O(sets × history) memory bound.
//
// The Demand-MIN comparison is not pure sampling noise: OPTGen computes
// the true Demand-MIN optimum (a line whose next access is a prefetch is
// free to drop), while the exact replay's victim rule only treats
// never-demanded-again lines as free. The sampled estimate therefore
// tracks a count that is itself a lower bound on the replay's — see the
// opt.OPTGen docs.
func (s *Suite) OracleEngines() (*Table, error) {
	const pf = "fdip"
	var jobs []runner.Job
	for _, app := range s.cfg.Apps {
		jobs = append(jobs,
			s.oracleJobFor(app, pf, OracleExact),
			s.oracleJobFor(app, pf, OracleSampled))
	}
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("oracle", "Oracle engines: exact vs sampled-set OPTGen demand misses (FDIP)",
		"application", "min", "min~", "min-err%", "dmin", "dmin~", "dmin-err%").WithMean()
	for _, app := range s.cfg.Apps {
		exact, err := s.oracleFor(app, pf, OracleExact)
		if err != nil {
			return nil, err
		}
		sampled, err := s.oracleFor(app, pf, OracleSampled)
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.0f",
			float64(exact.Min), float64(sampled.Min), relErrPct(exact.Min, sampled.Min),
			float64(exact.DemandMin), float64(sampled.DemandMin), relErrPct(exact.DemandMin, sampled.DemandMin))
	}
	t.Note = "~ columns are single-pass sampled-set estimates; dmin~ additionally tracks the true Demand-MIN optimum (a lower bound on the replay heuristic)"
	return t, nil
}

// relErrPct is the signed relative error of an estimate in percent.
func relErrPct(exact, est uint64) float64 {
	if exact == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (float64(est) - float64(exact)) / float64(exact) * 100
}

// TRRIPZoo places the temperature-tiered RRIP policy in the Ripple
// comparison: TRRIP as a hardware baseline over LRU, Ripple's hints
// injected on top of it, and the resulting replacement coverage — the
// Fig. 9-style view of a policy the paper does not study.
func (s *Suite) TRRIPZoo() (*Table, error) {
	const pf = "fdip"
	jobs := s.crossJobs(s.cfg.Apps, []string{pf}, []string{"lru", "trrip"})
	jobs = append(jobs, s.rippleJobs(s.cfg.Apps, []string{pf}, []string{"trrip"})...)
	if err := s.warm(jobs...); err != nil {
		return nil, err
	}
	t := NewTable("trrip", "Temperature-tiered RRIP under FDIP: hardware baseline and as Ripple's hint target",
		"application", "trrip%", "ripple-trrip%", "coverage%").WithMean()
	for _, app := range s.cfg.Apps {
		base, err := s.run(app, pf, "lru", false)
		if err != nil {
			return nil, err
		}
		hw, err := s.run(app, pf, "trrip", false)
		if err != nil {
			return nil, err
		}
		ev, err := s.rippleFor(app, pf, "trrip")
		if err != nil {
			return nil, err
		}
		t.AddRowF(app, "%.2f",
			speedupPct(base.Cycles, hw.Cycles),
			speedupPct(base.Cycles, ev.Best.Cycles),
			ev.Best.Coverage()*100)
	}
	t.Note = "speedups over the FDIP+LRU baseline; coverage is the share of ripple-trrip's evictions freed by hints"
	return t, nil
}
