package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableValueAndMean(t *testing.T) {
	tb := NewTable("x", "title", "app", "a", "b").WithMean()
	tb.AddRowF("r1", "%.2f", 1, 10)
	tb.AddRowF("r2", "%.2f", 3, 30)
	if v, ok := tb.Value("r1", "a"); !ok || v != 1 {
		t.Fatalf("Value(r1,a) = %v,%v", v, ok)
	}
	if v, ok := tb.Value("r2", "b"); !ok || v != 30 {
		t.Fatalf("Value(r2,b) = %v,%v", v, ok)
	}
	if _, ok := tb.Value("r3", "a"); ok {
		t.Fatal("missing row returned a value")
	}
	if _, ok := tb.Value("r1", "c"); ok {
		t.Fatal("missing column returned a value")
	}
	if m, ok := tb.Mean("a"); !ok || m != 2 {
		t.Fatalf("Mean(a) = %v,%v", m, ok)
	}
	if rows := tb.Rows(); len(rows) != 2 || rows[0] != "r1" {
		t.Fatalf("Rows = %v", rows)
	}
}

func TestTableStringCellsHaveNoMean(t *testing.T) {
	tb := NewTable("x", "t", "k", "v")
	tb.AddRow("r", "hello")
	if _, ok := tb.Value("r", "v"); ok {
		t.Fatal("string cell reported as numeric")
	}
	if _, ok := tb.Mean("v"); ok {
		t.Fatal("mean over string cells")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("fig0", "demo", "app", "col").WithMean()
	tb.Note = "a note"
	tb.AddRowF("alpha", "%.1f", 4)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"fig0", "demo", "a note", "alpha", "4.0", "mean", "4.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(registry))
	}
	for _, id := range ids {
		if _, ok := Describe(id); !ok {
			t.Fatalf("Describe(%q) missing", id)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Fatal("Describe accepted an unknown id")
	}
	// The paper's artifact set must all be present.
	for _, want := range []string{"fig1", "fig7", "fig8", "tab1", "tab2", "fig13", "demote", "granularity"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	s := New(Config{Log: nil})
	if _, err := s.Tables("bogus"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownApp(t *testing.T) {
	s := New(Config{Apps: []string{"not-an-app"}, Log: nil})
	if _, err := s.Tables("fig1"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// fastSuite runs against one small app and short traces so cheap
// experiments can execute in unit-test time.
func fastSuite() *Suite {
	return New(Config{
		Apps:         []string{"finagle-http"},
		TraceBlocks:  40_000,
		WarmupBlocks: 10_000,
		Thresholds:   []float64{0.55, 0.95},
		Log:          nil,
	})
}

func TestTab1AndTab2(t *testing.T) {
	s := fastSuite()
	tab1, err := s.Tab1()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tab1.Value("lru", "overhead"); v != 0 {
		// overhead column is a string; Value must fail, use row presence
		t.Fatal("unexpected numeric overhead cell")
	}
	rows := tab1.Rows()
	if len(rows) < 6 {
		t.Fatalf("tab1 rows = %v", rows)
	}
	tab2, err := s.Tab2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows()) < 8 {
		t.Fatal("tab2 too short")
	}
}

func TestFig1OnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	s := fastSuite()
	tb, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Value("finagle-http", "ideal-speedup%")
	if !ok {
		t.Fatal("fig1 missing app row")
	}
	if v <= 0 || v > 100 {
		t.Fatalf("ideal speedup %v%% implausible", v)
	}
}

func TestFig5WorkedExample(t *testing.T) {
	s := fastSuite()
	tb, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows()) == 0 {
		t.Fatal("fig5 produced no candidate rows")
	}
	// Probabilities are in (0, 1].
	for _, r := range tb.Rows() {
		v, ok := tb.Value(r, "P(evict|exec)")
		if !ok || v <= 0 || v > 1 {
			t.Fatalf("candidate %s has probability %v", r, v)
		}
	}
}

func TestRunRendersToWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := fastSuite()
	var buf bytes.Buffer
	if err := s.Run("compulsory", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compulsory") {
		t.Fatal("render missing experiment id")
	}
}

func TestLBRExperimentOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	s := fastSuite()
	tb, err := s.LBR()
	if err != nil {
		t.Fatal(err)
	}
	pt, ok1 := tb.Value("finagle-http", "pt-windows")
	lb, ok2 := tb.Value("finagle-http", "lbr-windows")
	if !ok1 || !ok2 {
		t.Fatal("lbr table missing window counts")
	}
	if lb >= pt {
		t.Fatalf("LBR fragments found %v windows, full PT %v — sampling should see fewer", lb, pt)
	}
}

func TestXPrefetchOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a plan under the temporal prefetcher")
	}
	s := fastSuite()
	tb, err := s.XPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows()) != 1 {
		t.Fatalf("rows = %v", tb.Rows())
	}
}

func TestLayoutAblationOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	s := fastSuite()
	tb, err := s.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Value("finagle-http", "preserve%"); !ok {
		t.Fatal("layout table missing preserve column")
	}
	if _, ok := tb.Value("finagle-http", "shift%"); !ok {
		t.Fatal("layout table missing shift column")
	}
}

func TestNewConfigDefaults(t *testing.T) {
	s := New(Config{Log: nil})
	if s.cfg.TraceBlocks != DefaultConfig().TraceBlocks {
		t.Fatalf("TraceBlocks default = %d", s.cfg.TraceBlocks)
	}
	if len(s.cfg.Apps) != 9 {
		t.Fatalf("Apps default = %v", s.cfg.Apps)
	}
	s2 := New(Config{TraceBlocks: 90_000, Log: nil})
	if s2.cfg.WarmupBlocks != 30_000 {
		t.Fatalf("WarmupBlocks default = %d, want TraceBlocks/3", s2.cfg.WarmupBlocks)
	}
}

func TestExtAppsRespectsRestriction(t *testing.T) {
	s := New(Config{Apps: []string{"kafka"}, Log: nil})
	got := s.extApps()
	if len(got) != 1 || got[0] != "kafka" {
		t.Fatalf("extApps = %v", got)
	}
	full := New(Config{Log: nil})
	if len(full.extApps()) != 3 {
		t.Fatalf("extApps on full suite = %v", full.extApps())
	}
}

func TestShapeCheckRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("computes several experiments")
	}
	// Two apps so the JIT-vs-non-JIT coverage claim has both sides.
	s := New(Config{
		Apps:         []string{"finagle-http", "drupal"},
		TraceBlocks:  60_000,
		WarmupBlocks: 20_000,
		Thresholds:   []float64{0.55, 0.95},
		Log:          nil,
	})
	var buf bytes.Buffer
	violations, err := s.ShapeCheck(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// At this tiny scale some claims may legitimately wobble; the check
	// itself must run and report coherently.
	out := buf.String()
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "fig10") {
		t.Fatalf("check skipped claims:\n%s", out)
	}
	for _, v := range violations {
		t.Logf("violated at small scale: %s", v)
	}
}

func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations twice")
	}
	mk := func() *Table {
		s := New(Config{
			Apps:         []string{"kafka"},
			TraceBlocks:  40_000,
			WarmupBlocks: 10_000,
			Log:          nil,
		})
		tb, err := s.Fig1()
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	a, b := mk(), mk()
	va, _ := a.Value("kafka", "ideal-speedup%")
	vb, _ := b.Value("kafka", "ideal-speedup%")
	if va != vb {
		t.Fatalf("fresh suites disagree: %v vs %v", va, vb)
	}
}

func TestPhasesExperimentOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds phased app variants")
	}
	s := fastSuite()
	tb, err := s.Phases()
	if err != nil {
		t.Fatal(err)
	}
	rows := tb.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		rp, _ := tb.Value(r, "ripple%")
		id, _ := tb.Value(r, "ideal%")
		if rp > id+0.01 {
			t.Fatalf("%s: ripple %.2f exceeds ideal %.2f", r, rp, id)
		}
	}
}

func TestArchExperimentDiagonalWins(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes per-geometry plans")
	}
	s := fastSuite()
	tb, err := s.Arch()
	if err != nil {
		t.Fatal(err)
	}
	// The 16KB-tuned plan must do at least as well on 16KB as on 64KB
	// (mismatched geometry forfeits gain).
	own, ok1 := tb.Value("finagle-http@16KB/4w", "run@16KB/4w%")
	far, ok2 := tb.Value("finagle-http@16KB/4w", "run@64KB/8w%")
	if !ok1 || !ok2 {
		t.Fatal("arch table missing cells")
	}
	if own < far {
		t.Fatalf("mismatched geometry outperformed the tuned one: %.2f vs %.2f", own, far)
	}
}

func TestCodeLayoutComposes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the layout optimizer and two pipelines")
	}
	s := fastSuite()
	tb, err := s.CodeLayout()
	if err != nil {
		t.Fatal(err)
	}
	lay, _ := tb.Value("finagle-http", "layout%")
	both, _ := tb.Value("finagle-http", "layout+ripple%")
	if both < lay {
		t.Fatalf("composition lost the layout gain: %.2f vs %.2f", both, lay)
	}
}

func TestLimitExperimentsOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs FDIP simulations")
	}
	s := fastSuite()
	fig2, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	fdip, _ := fig2.Value("finagle-http", "fdip+lru%")
	idealRepl, _ := fig2.Value("finagle-http", "fdip+ideal-repl%")
	idealCache, _ := fig2.Value("finagle-http", "ideal-cache%")
	if !(fdip <= idealRepl+0.05 && idealRepl <= idealCache+0.05) {
		t.Fatalf("orderings violated: %.2f / %.2f / %.2f", fdip, idealRepl, idealCache)
	}

	fig3, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	ideal, _ := fig3.Value("finagle-http", "ideal%")
	if ideal < 0 {
		t.Fatalf("fig3 ideal negative: %.2f", ideal)
	}

	obs, err := s.Obs12()
	if err != nil {
		t.Fatal(err)
	}
	total, _ := obs.Value("finagle-http", "fdip total%")
	obs1, _ := obs.Value("finagle-http", "fdip obs1(pollute)%")
	if obs1 > total+0.05 {
		t.Fatalf("obs1 (%.2f) exceeds the total (%.2f)", obs1, total)
	}
}

func TestFig13OnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("per-input analyses")
	}
	s := fastSuite()
	tb, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Value("finagle-http", "profile#0%"); !ok {
		t.Fatal("fig13 missing generic column")
	}
	if _, ok := tb.Value("finagle-http", "input-specific%"); !ok {
		t.Fatal("fig13 missing specific column")
	}
}

func TestDemoteAndGranularityOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("re-evaluates tuned plans")
	}
	s := fastSuite()
	dem, err := s.Demote()
	if err != nil {
		t.Fatal(err)
	}
	if len(dem.Rows()) != 1 {
		t.Fatalf("demote rows = %v", dem.Rows())
	}
	gran, err := s.Granularity()
	if err != nil {
		t.Fatal(err)
	}
	if len(gran.Rows()) != 1 {
		t.Fatalf("granularity rows = %v", gran.Rows())
	}
}

// TestParallelMatchesSerial is the determinism contract of the runner
// rewiring: the rendered output of a suite at -j 8 must be byte-identical
// to the same suite at -j 1.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite twice")
	}
	render := func(workers int) string {
		s := New(Config{
			Apps:         []string{"finagle-http", "kafka"},
			TraceBlocks:  30_000,
			WarmupBlocks: 10_000,
			Thresholds:   []float64{0.55, 0.95},
			Workers:      workers,
			Log:          nil,
		})
		var buf bytes.Buffer
		// fig8 exercises the ripple pipeline under the Random policy, where
		// concurrent PlanAt calls once raced on the shared per-app Analysis.
		for _, id := range []string{"fig2", "fig8", "demote"} {
			if err := s.Run(id, &buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Fatalf("parallel output diverges from serial:\n--- j=1\n%s\n--- j=8\n%s", serial, parallel)
	}
}

// TestWarmStoreSkipsAllSimulation is the incremental-rerun contract: a
// second suite sharing the cache directory must serve the same experiment
// without computing a single job, and render byte-identically.
func TestWarmStoreSkipsAllSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cfg := Config{
		Apps:         []string{"kafka"},
		TraceBlocks:  30_000,
		WarmupBlocks: 10_000,
		Thresholds:   []float64{0.55, 0.95},
		CacheDir:     dir,
		Log:          nil,
	}
	s1 := New(cfg)
	var cold bytes.Buffer
	if err := s1.Run("fig1", &cold); err != nil {
		t.Fatal(err)
	}
	if s1.Stats().Computed == 0 {
		t.Fatal("cold suite computed nothing")
	}

	s2 := New(cfg)
	var warm bytes.Buffer
	if err := s2.Run("fig1", &warm); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Computed != 0 {
		t.Fatalf("warm suite recomputed %d job(s): %+v", st.Computed, st)
	}
	if cold.String() != warm.String() {
		t.Fatalf("cache round trip changed the render:\n--- cold\n%s\n--- warm\n%s", cold.String(), warm.String())
	}
}

// TestPartialOverlapIsIncremental: a different experiment that shares
// primitives (compulsory reuses fig1's none/lru runs) must be assembled
// entirely from store hits in a fresh process.
func TestPartialOverlapIsIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cfg := Config{
		Apps:         []string{"kafka"},
		TraceBlocks:  30_000,
		WarmupBlocks: 10_000,
		Thresholds:   []float64{0.55, 0.95},
		CacheDir:     dir,
		Log:          nil,
	}
	s1 := New(cfg)
	if _, err := s1.Tables("fig1"); err != nil {
		t.Fatal(err)
	}
	s2 := New(cfg)
	if _, err := s2.Tables("compulsory"); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Computed != 0 {
		t.Fatalf("overlapping experiment re-simulated %d job(s): %+v", st.Computed, st)
	}
	if st.StoreHits == 0 {
		t.Fatalf("overlapping experiment never consulted the store: %+v", st)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("rt", "round trip", "app", "a", "b").WithMean()
	tb.Note = "a note"
	tb.AddRowF("x", "%.2f", 1.25, math.NaN())
	tb.AddRow("y", "hello", "world")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	tb.Render(&want)
	back.Render(&got)
	if want.String() != got.String() {
		t.Fatalf("render changed across JSON round trip:\n--- want\n%s\n--- got\n%s", want.String(), got.String())
	}
	if v, ok := back.Value("x", "a"); !ok || v != 1.25 {
		t.Fatalf("Value after round trip = %v,%v", v, ok)
	}
	if _, ok := back.Value("y", "a"); ok {
		t.Fatal("string cell became numeric across round trip")
	}
	m1, ok1 := tb.Mean("b")
	m2, ok2 := back.Mean("b")
	if ok1 != ok2 || (ok1 && !(math.IsNaN(m1) && math.IsNaN(m2)) && m1 != m2) {
		t.Fatalf("mean changed across round trip: %v,%v vs %v,%v", m1, ok1, m2, ok2)
	}
}

func TestEmptyTableRenders(t *testing.T) {
	tb := NewTable("empty", "nothing", "k", "v").WithMean()
	var buf bytes.Buffer
	tb.Render(&buf) // must not panic
	if _, ok := tb.Mean("v"); ok {
		t.Fatal("mean over zero rows")
	}
	if len(tb.Rows()) != 0 {
		t.Fatal("phantom rows")
	}
}

func TestTableMixedRowWidths(t *testing.T) {
	tb := NewTable("mixed", "t", "k", "a", "b")
	tb.AddRow("short", "1") // fewer cells than columns
	tb.AddRowF("full", "%.0f", 2, 3)
	var buf bytes.Buffer
	tb.Render(&buf) // must not panic on the ragged row
	if v, ok := tb.Value("full", "b"); !ok || v != 3 {
		t.Fatalf("Value(full,b) = %v,%v", v, ok)
	}
	if _, ok := tb.Value("short", "b"); ok {
		t.Fatal("missing cell reported a value")
	}
}

func TestOracleEnginesTable(t *testing.T) {
	s := fastSuite()
	tb, err := s.OracleEngines()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.oracleFor("finagle-http", "fdip", OracleExact)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tb.Value("finagle-http", "min"); !ok || v != float64(exact.Min) {
		t.Fatalf("oracle table min = %v,%v; exact engine says %d", v, ok, exact.Min)
	}
	sampledMin, ok := tb.Value("finagle-http", "min~")
	if !ok || sampledMin <= 0 {
		t.Fatalf("sampled MIN estimate = %v,%v", sampledMin, ok)
	}
	// The default machine has 64 sets and the default sample budget is 64,
	// so every set is sampled: the only estimation error is the bounded
	// history window, which can only turn long-reuse hits into misses.
	// The estimate is therefore a certified upper bound on exact MIN.
	if sampledMin < float64(exact.Min) {
		t.Fatalf("fully-sampled MIN estimate %v below exact %d", sampledMin, exact.Min)
	}
	if e, _ := tb.Value("finagle-http", "min-err%"); e > 200 {
		t.Fatalf("sampled MIN overcount unreasonable: +%.1f%%", e)
	}
	// Demand-MIN sampled tracks the true optimum: never above the exact
	// replay heuristic by more than sampling noise, and on these streams
	// it should stay below or near it.
	dexact, _ := tb.Value("finagle-http", "dmin")
	dsamp, _ := tb.Value("finagle-http", "dmin~")
	if dexact <= 0 || dsamp <= 0 {
		t.Fatalf("demand-min cells: exact=%v sampled=%v", dexact, dsamp)
	}
}

func TestSampledOracleSuiteConfig(t *testing.T) {
	s := New(Config{
		Apps:         []string{"finagle-http"},
		TraceBlocks:  40_000,
		WarmupBlocks: 10_000,
		Thresholds:   []float64{0.55, 0.95},
		Oracle:       OracleSampled,
	})
	if s.cfg.OracleSampleSets == 0 {
		t.Fatal("sampled suite did not default OracleSampleSets")
	}
	// Signatures must not collide with the exact keyspace.
	if s.oracleSigFor("a", "fdip", OracleExact) == s.oracleSigFor("a", "fdip", OracleSampled) {
		t.Fatal("exact and sampled oracle signatures collide")
	}
	if s.cellSig("fig3", "x") == fastSuite().cellSig("fig3", "x") {
		t.Fatal("cell signatures ignore the oracle engine")
	}
	n, err := s.oracleMissCount("finagle-http", "fdip", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("sampled oracle MIN estimate is zero")
	}
}

func TestTRRIPZooOnSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Ripple pipeline")
	}
	s := fastSuite()
	tb, err := s.TRRIPZoo()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Value("finagle-http", "trrip%"); !ok {
		t.Fatal("trrip table missing hardware baseline column")
	}
	cov, ok := tb.Value("finagle-http", "coverage%")
	if !ok || cov < 0 || cov > 100 {
		t.Fatalf("ripple-trrip coverage = %v,%v", cov, ok)
	}
}
