package lbr

import (
	"testing"

	"ripple/internal/blockseq"
	"ripple/internal/program"
)

func mkTrace(n int) blockseq.SliceSource {
	tr := make([]program.BlockID, n)
	for i := range tr {
		tr[i] = program.BlockID(i % 17)
	}
	return blockseq.SliceSource(tr)
}

func TestSampleShape(t *testing.T) {
	cfg := Config{Interval: 100, Depth: 8, Seed: 1}
	p, err := Sample(mkTrace(10_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fragments) == 0 {
		t.Fatal("no fragments captured")
	}
	// Roughly one sample per interval.
	want := 10_000 / 100
	if len(p.Fragments) < want/2 || len(p.Fragments) > want*2 {
		t.Fatalf("%d fragments for %d expected samples", len(p.Fragments), want)
	}
	for _, f := range p.Fragments {
		if len(f) == 0 || len(f) > cfg.Depth {
			t.Fatalf("fragment of length %d (depth %d)", len(f), cfg.Depth)
		}
	}
	if r := p.CaptureRatio(); r <= 0 || r > 0.2 {
		t.Fatalf("capture ratio %.3f implausible for interval 100/depth 8", r)
	}
}

func TestFragmentsMatchTraceContent(t *testing.T) {
	tr := mkTrace(5_000)
	p, err := Sample(tr, Config{Interval: 50, Depth: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every fragment must be a contiguous subsequence of the trace; check
	// by value (the trace is periodic, so verify windows against the
	// generating function).
	for _, f := range p.Fragments {
		for i := 1; i < len(f); i++ {
			wantNext := (int(f[i-1]) + 1) % 17
			if int(f[i]) != wantNext {
				t.Fatalf("fragment not contiguous: %v", f)
			}
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	tr := mkTrace(3_000)
	a, _ := Sample(tr, DefaultConfig())
	b, _ := Sample(tr, DefaultConfig())
	if len(a.Fragments) != len(b.Fragments) || a.SampledBlocks != b.SampledBlocks {
		t.Fatal("same-seed sampling diverged")
	}
}

func TestSampleRejectsBadConfig(t *testing.T) {
	if _, err := Sample(mkTrace(10), Config{Interval: 0, Depth: 4}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := Sample(mkTrace(10), Config{Interval: 10, Depth: 0}); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	p, err := Sample(nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fragments) != 0 || p.CaptureRatio() != 0 {
		t.Fatal("empty trace produced samples")
	}
}

func TestSampleIntervalJitterBounds(t *testing.T) {
	// With depth 1, each fragment is a single block at the sample point;
	// reconstruct approximate sample spacing from fragment count.
	tr := mkTrace(100_000)
	cfg := Config{Interval: 200, Depth: 1, Seed: 3}
	p, err := Sample(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Jitter is [0.75, 1.25) of nominal: counts bounded accordingly.
	lo := int(float64(len(tr)) / (1.25 * float64(cfg.Interval)) * 0.9)
	hi := int(float64(len(tr))/(0.75*float64(cfg.Interval))*1.1) + 1
	if len(p.Fragments) < lo || len(p.Fragments) > hi {
		t.Fatalf("%d samples outside jitter bounds [%d, %d]", len(p.Fragments), lo, hi)
	}
}
