// Package lbr models the paper's second profile source (Sec. III-A):
// Last Branch Record sampling. Where Intel PT captures the complete
// basic-block sequence, LBR-based profilers (perf record -b, AutoFDO)
// interrupt the program periodically and read back only the most recent
// taken-branch records — a short window of control flow per sample.
//
// The sampler here replays that acquisition model over a ground-truth
// block trace: every Interval executed blocks (with deterministic jitter,
// as timer-based sampling never lands on exact boundaries) it captures the
// last Depth blocks as one fragment. Ripple's AnalyzeMulti can consume the
// fragments directly, which makes the PT-vs-LBR profile-quality comparison
// (the `lbr` experiment) a one-liner: fragments shorter than an eviction
// window cannot witness that window, so coverage drops with sample depth.
package lbr

import (
	"fmt"

	"ripple/internal/blockseq"
	"ripple/internal/program"
	"ripple/internal/stats"
)

// Config parameterizes the sampling acquisition.
type Config struct {
	// Interval is the mean number of executed blocks between samples
	// (the profiler's sampling period).
	Interval int
	// Depth is how many trailing blocks one sample captures. Hardware
	// LBRs hold 16-32 branch records; with straight-line runs between
	// branches, 32 records reconstruct roughly 32 blocks.
	Depth int
	// Seed drives the deterministic sampling jitter.
	Seed uint64
}

// DefaultConfig matches a perf-style profiler: one 32-deep sample every
// 500 executed blocks (~0.2% of blocks captured per unit depth).
func DefaultConfig() Config {
	return Config{Interval: 500, Depth: 32, Seed: 0x1B12}
}

// Profile is the sampled approximation of an execution.
type Profile struct {
	// Fragments are the captured control-flow windows, in sample order.
	Fragments [][]program.BlockID
	// SampledBlocks counts block records across all fragments.
	SampledBlocks int
	// TraceBlocks is the length of the underlying execution.
	TraceBlocks int
}

// CaptureRatio is the fraction of executed blocks the profile observed.
func (p *Profile) CaptureRatio() float64 {
	if p.TraceBlocks == 0 {
		return 0
	}
	return float64(p.SampledBlocks) / float64(p.TraceBlocks)
}

// Sample acquires an LBR-style profile from a ground-truth block stream.
// It holds only a Depth-sized ring of recent blocks plus the captured
// fragments — like the hardware, it never sees the whole trace at once.
func Sample(src blockseq.Source, cfg Config) (*Profile, error) {
	if cfg.Interval <= 0 || cfg.Depth <= 0 {
		return nil, fmt.Errorf("lbr: non-positive interval or depth: %+v", cfg)
	}
	if src == nil {
		src = blockseq.Of()
	}
	rng := stats.NewRNG(cfg.Seed)
	p := &Profile{}
	ring := make([]program.BlockID, cfg.Depth)
	// First sample lands after one jittered interval.
	next := jittered(rng, cfg.Interval)
	seq := src.Open()
	for pos := 0; ; pos++ {
		bid, ok := seq.Next()
		if !ok {
			p.TraceBlocks = pos
			return p, seq.Err()
		}
		ring[pos%cfg.Depth] = bid
		if pos < next {
			continue
		}
		start := pos - cfg.Depth + 1
		if start < 0 {
			start = 0
		}
		frag := make([]program.BlockID, 0, pos+1-start)
		for i := start; i <= pos; i++ {
			frag = append(frag, ring[i%cfg.Depth])
		}
		p.Fragments = append(p.Fragments, frag)
		p.SampledBlocks += len(frag)
		next = pos + jittered(rng, cfg.Interval)
	}
}

// Sources adapts the captured fragments for AnalyzeMulti-style consumers
// that take one replayable source per profile fragment.
func (p *Profile) Sources() []blockseq.Source {
	out := make([]blockseq.Source, len(p.Fragments))
	for i, f := range p.Fragments {
		out[i] = blockseq.SliceSource(f)
	}
	return out
}

// jittered draws an interval in [0.75, 1.25) of the nominal period.
func jittered(rng *stats.RNG, interval int) int {
	lo := interval * 3 / 4
	span := interval / 2
	if span < 1 {
		span = 1
	}
	return lo + rng.Intn(span)
}
