// Package rippled is the fleet coordinator behind Ripple-as-a-service:
// an HTTP backend for the runner's content-addressed result store plus
// signature-keyed job leasing, so many worker processes — or machines —
// drain one sweep while each duplicate signature is computed exactly
// once fleet-wide.
//
// The package has three parts. Server exposes a filesystem runner.Store
// over HTTP (GET/PUT/HEAD by signature hash with atomic writes, SHA-256
// ETag validation, and the store's quarantine semantics preserved over
// the wire) and arbitrates compute leases. Client implements
// runner.StoreBackend and runner.Coordinator against such a server,
// with Transient-classified retry/backoff and an outage breaker that
// degrades to local compute when the server is unreachable. Command
// rippled (cmd/rippled) serves a store directory.
package rippled

import (
	"fmt"
	"sync"
	"time"
)

// lease is one held compute claim on a signature.
type lease struct {
	owner   string
	token   string
	expires time.Time
}

// leaseTable arbitrates signature-keyed compute leases with TTL expiry:
// a signature has at most one live holder; an expired lease returns to
// the queue (the next acquirer steals it). The zero table is not usable
// — construct with newLeaseTable.
type leaseTable struct {
	now func() time.Time

	mu   sync.Mutex
	held map[string]*lease
	seq  uint64

	granted uint64 // acquisitions granted (incl. steals)
	stolen  uint64 // grants that displaced an expired holder
	busy    uint64 // acquisitions refused: live holder present
}

func newLeaseTable(now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{now: now, held: make(map[string]*lease)}
}

// acquire claims sig for owner. Granted claims return a renewal token;
// refused claims report the live holder and how long until its lease
// expires (the natural retry horizon).
func (t *leaseTable) acquire(sig, owner string, ttl time.Duration) (token, holder string, remaining time.Duration, granted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if l, ok := t.held[sig]; ok {
		if now.Before(l.expires) {
			t.busy++
			return "", l.owner, l.expires.Sub(now), false
		}
		t.stolen++
	}
	t.seq++
	l := &lease{owner: owner, token: fmt.Sprintf("%s#%d", owner, t.seq), expires: now.Add(ttl)}
	t.held[sig] = l
	t.granted++
	return l.token, owner, ttl, true
}

// renew extends a held lease. It fails — the lease is lost — when the
// token no longer matches (expired and stolen, released, or completed).
func (t *leaseTable) renew(sig, token string, ttl time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.held[sig]
	if !ok || l.token != token || !t.now().Before(l.expires) {
		return false
	}
	l.expires = t.now().Add(ttl)
	return true
}

// release frees a held lease; stale tokens are ignored (the lease was
// already stolen or completed).
func (t *leaseTable) release(sig, token string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.held[sig]
	if !ok || l.token != token {
		return false
	}
	delete(t.held, sig)
	return true
}

// complete frees any lease on sig regardless of holder: the result is
// published, so the claim — whoever held it — is moot.
func (t *leaseTable) complete(sig string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.held, sig)
}

// counters returns (granted, stolen, busy, live) for the stats surface.
func (t *leaseTable) counters() (granted, stolen, busy uint64, live int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.granted, t.stolen, t.busy, len(t.held)
}
