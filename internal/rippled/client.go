package rippled

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/runner"
)

// ClientOptions configures a Client.
type ClientOptions struct {
	// HTTPClient overrides the transport; nil uses a client with a 10s
	// per-request timeout.
	HTTPClient *http.Client
	// Retries bounds per-operation re-sends of transiently failing
	// requests (network errors, 5xx); < 0 disables, 0 uses the default 2.
	Retries int
	// RetryBackoff is the base delay before the first resend, doubled
	// per attempt with signature-seeded jitter; <= 0 uses 25ms.
	RetryBackoff time.Duration
	// LeaseTTL is the compute-lease duration requested from the server
	// (which clamps it to its own bound); <= 0 uses 15s.
	LeaseTTL time.Duration
	// PollInterval paces store polling while another worker holds the
	// lease; <= 0 uses 50ms.
	PollInterval time.Duration
	// OutageCooldown is how long the client assumes the server is down
	// after a network failure, skipping requests so a dead rippled costs
	// one timeout — not one per job; <= 0 uses 2s.
	OutageCooldown time.Duration
	// Owner identifies this worker in lease state (default host#pid).
	Owner string
	// Log receives degradation notices (nil silences them).
	Log io.Writer
}

// Client speaks the rippled wire protocol. It implements
// runner.StoreBackend — so a pool persists through a shared rippled
// exactly as it would through a local directory — and
// runner.Coordinator, extending the pool's singleflight to fleet scope.
//
// Failure policy: requests that fail transiently are retried with
// deterministic signature-seeded backoff; once the server is deemed
// unreachable the outage breaker opens and every operation degrades
// instantly (Lookup reads as a miss, Coordinate waives coordination), so
// a sweep survives a dead coordinator at local-compute speed rather
// than failing or timing out per job.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	ttl     time.Duration
	poll    time.Duration
	cool    time.Duration
	owner   string
	log     io.Writer
	logMu   sync.Mutex

	// downUntil is the outage breaker: a unix-nano deadline before which
	// every request short-circuits.
	downUntil atomic.Int64
}

var (
	_ runner.StoreBackend = (*Client)(nil)
	_ runner.Coordinator  = (*Client)(nil)
)

// NewClient builds a client for a rippled base URL (e.g.
// "http://127.0.0.1:8344").
func NewClient(baseURL string, opts ClientOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("rippled: invalid server URL %q", baseURL)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("rippled: unsupported scheme %q (want http or https)", u.Scheme)
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	retries := opts.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	owner := opts.Owner
	if owner == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		owner = fmt.Sprintf("%s#%d", host, os.Getpid())
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      hc,
		retries: retries,
		backoff: opts.RetryBackoff,
		ttl:     opts.LeaseTTL,
		poll:    opts.PollInterval,
		cool:    opts.OutageCooldown,
		owner:   owner,
		log:     opts.Log,
	}
	if c.backoff <= 0 {
		c.backoff = 25 * time.Millisecond
	}
	if c.ttl <= 0 {
		c.ttl = 15 * time.Second
	}
	if c.poll <= 0 {
		c.poll = 50 * time.Millisecond
	}
	if c.cool <= 0 {
		c.cool = 2 * time.Second
	}
	return c, nil
}

// Owner returns the identity this client leases under.
func (c *Client) Owner() string { return c.owner }

func (c *Client) logf(format string, args ...any) {
	if c.log == nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	fmt.Fprintf(c.log, format+"\n", args...)
}

// --- outage breaker ----------------------------------------------------

func (c *Client) offline() bool {
	return time.Now().UnixNano() < c.downUntil.Load()
}

// noteFailure opens the breaker on network-level failures (the server is
// unreachable); protocol-level errors leave it closed — the server is up
// and the next request may well succeed.
func (c *Client) noteFailure(err error) {
	var uerr *url.Error
	if !errors.As(err, &uerr) {
		return
	}
	now := time.Now()
	if prev := c.downUntil.Swap(now.Add(c.cool).UnixNano()); prev < now.UnixNano() {
		c.logf("rippled: %s unreachable (%v); degrading to local compute", c.base, err)
	}
}

// --- transport helpers -------------------------------------------------

// statusError is a non-2xx reply; 5xx classifies as transient (and
// therefore retries), 4xx as permanent.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("rippled: server returned %d: %s", e.code, strings.TrimSpace(e.body))
}

func (e *statusError) Transient() bool { return e.code >= 500 }

// transientErr reports whether an operation error is worth re-sending:
// network failures and 5xx replies, per runner's Transient contract.
func transientErr(err error) bool {
	var uerr *url.Error
	if errors.As(err, &uerr) {
		return true
	}
	return runner.Transient(err)
}

// send issues one request and normalizes non-2xx replies into
// statusError. okCodes lists statuses the caller handles itself.
func (c *Client) send(req *http.Request, okCodes ...int) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	for _, code := range okCodes {
		if resp.StatusCode == code {
			return resp, nil
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	return nil, &statusError{code: resp.StatusCode, body: string(body)}
}

// retrying runs op with the client's bounded transient-retry policy.
// Backoff sleeps are signature-seeded (deterministic per sig and
// attempt) and cut short when ctx ends.
func (c *Client) retrying(ctx context.Context, sig string, op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !transientErr(err) || attempt >= c.retries || ctx.Err() != nil {
			return err
		}
		t := time.NewTimer(runner.RetryDelay(c.backoff, sig, attempt+1))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

func (c *Client) entryURL(sig string) string {
	return c.base + storePrefix + runner.Key(sig)
}

// --- StoreBackend ------------------------------------------------------

// Lookup fetches sig's entry. Network failure — after retries — reads as
// a miss (the pool then computes locally); a 410 reads as StatusCorrupt,
// mirroring the local store's quarantine accounting.
func (c *Client) Lookup(sig string) (raw []byte, st runner.Status) {
	if c.offline() {
		return nil, runner.StatusMiss
	}
	err := c.retrying(context.Background(), sig, func() error {
		req, rerr := http.NewRequest(http.MethodGet, c.entryURL(sig), nil)
		if rerr != nil {
			return rerr
		}
		req.Header.Set(headerSig, sig)
		resp, rerr := c.send(req, http.StatusOK, http.StatusNotFound, http.StatusGone)
		if rerr != nil {
			return rerr
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusNotFound:
			raw, st = nil, runner.StatusMiss
			return nil
		case http.StatusGone:
			raw, st = nil, runner.StatusCorrupt
			return nil
		}
		body, rerr := io.ReadAll(http.MaxBytesReader(nil, resp.Body, maxEntryBytes))
		if rerr != nil {
			return rerr
		}
		// SHA validation: a payload that does not hash to its ETag was
		// damaged in flight; retry rather than decode garbage.
		if etag := resp.Header.Get("ETag"); etag != "" && etag != etagOf(body) {
			return fmt.Errorf("rippled: entry %s failed ETag validation: %w", runner.Key(sig), runner.ErrTransient)
		}
		raw, st = body, runner.StatusHit
		return nil
	})
	if err != nil {
		c.noteFailure(err)
		return nil, runner.StatusMiss
	}
	return raw, st
}

// Put publishes v under sig. The returned error is Transient-classified
// when the failure was; the pool treats any Put failure as a warning,
// so an outage costs persistence, never the sweep.
func (c *Client) Put(sig string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rippled: encode result: %w", err)
	}
	if c.offline() {
		return fmt.Errorf("rippled: %s unreachable (breaker open): %w", c.base, runner.ErrTransient)
	}
	sum := sha256.Sum256(raw)
	err = c.retrying(context.Background(), sig, func() error {
		req, rerr := http.NewRequest(http.MethodPut, c.entryURL(sig), bytes.NewReader(raw))
		if rerr != nil {
			return rerr
		}
		req.Header.Set(headerSig, sig)
		req.Header.Set(headerSHA, hex.EncodeToString(sum[:]))
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := c.send(req, http.StatusNoContent)
		if rerr != nil {
			return rerr
		}
		resp.Body.Close()
		return nil
	})
	if err != nil {
		c.noteFailure(err)
		return fmt.Errorf("rippled: put %s: %w", runner.Key(sig), err)
	}
	return nil
}

// Quarantine moves sig's entry aside on the server, returning the
// server-side quarantine path.
func (c *Client) Quarantine(sig string) (string, error) {
	if c.offline() {
		return "", fmt.Errorf("rippled: %s unreachable (breaker open): %w", c.base, runner.ErrTransient)
	}
	var reply quarantineReply
	err := c.retrying(context.Background(), sig, func() error {
		req, rerr := http.NewRequest(http.MethodPost, c.entryURL(sig)+"/quarantine", nil)
		if rerr != nil {
			return rerr
		}
		req.Header.Set(headerSig, sig)
		resp, rerr := c.send(req, http.StatusOK)
		if rerr != nil {
			return rerr
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&reply)
	})
	if err != nil {
		c.noteFailure(err)
		return "", fmt.Errorf("rippled: quarantine %s: %w", runner.Key(sig), err)
	}
	return reply.Path, nil
}

// --- Coordinator -------------------------------------------------------

// leaseCall posts one lease operation.
func (c *Client) leaseCall(ctx context.Context, path string, body leaseRequest) (leaseResponse, error) {
	var reply leaseResponse
	err := c.retrying(ctx, body.Sig, func() error {
		raw, merr := json.Marshal(body)
		if merr != nil {
			return merr
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := c.send(req, http.StatusOK, http.StatusConflict)
		if rerr != nil {
			return rerr
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&reply)
	})
	return reply, err
}

// Coordinate implements runner.Coordinator: it resolves a store miss
// fleet-wide. The caller either receives a published result another
// worker computed while we waited, or wins the compute lease (kept alive
// by background heartbeat renewal until Done/Release). Coordination
// failure returns (nil, nil, nil): compute locally, correctness intact.
func (c *Client) Coordinate(ctx context.Context, sig string) ([]byte, runner.Lease, error) {
	if c.offline() {
		return nil, nil, nil
	}
	for {
		resp, err := c.leaseCall(ctx, acquirePath, leaseRequest{Sig: sig, Owner: c.owner, TTLMillis: c.ttl.Milliseconds()})
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			c.noteFailure(err)
			return nil, nil, nil
		}
		switch resp.State {
		case stateGranted:
			return nil, c.newLease(sig, resp.Token), nil
		case stateDone, stateBusy:
			// Either the result is already published, or someone else is
			// computing it: poll the store. A done-but-missing entry (it
			// was quarantined between acquire and fetch) loops back to
			// acquire, which grants a recompute lease.
			if raw, st := c.Lookup(sig); st == runner.StatusHit {
				return raw, nil, nil
			}
			if c.offline() {
				return nil, nil, nil
			}
		default:
			c.logf("rippled: unknown lease state %q for %s; computing locally", resp.State, runner.Key(sig))
			return nil, nil, nil
		}
		wait := c.poll
		if ra := time.Duration(resp.RetryAfterMillis) * time.Millisecond; ra > 0 && ra < wait {
			wait = ra
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, nil, ctx.Err()
		case <-t.C:
		}
	}
}

// clientLease keeps one granted lease alive until the computation
// resolves it.
type clientLease struct {
	c          *Client
	sig, token string
	stop       chan struct{}
	hb         sync.WaitGroup
	once       sync.Once
}

func (c *Client) newLease(sig, token string) *clientLease {
	l := &clientLease{c: c, sig: sig, token: token, stop: make(chan struct{})}
	l.hb.Add(1)
	go l.heartbeat()
	return l
}

// heartbeat renews at a third of the TTL, so two renewals can fail
// before the lease expires. Losing the lease (server restarted, lease
// stolen after a stall) stops renewal but never the computation: the
// worst case is a duplicate compute, never a wrong result.
func (l *clientLease) heartbeat() {
	defer l.hb.Done()
	interval := l.c.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			resp, err := l.c.leaseCall(context.Background(), renewPath,
				leaseRequest{Sig: l.sig, Token: l.token, TTLMillis: l.c.ttl.Milliseconds()})
			if err != nil || resp.State != stateGranted {
				l.c.logf("rippled: lease renewal for %s failed (state=%q err=%v); continuing uncovered",
					runner.Key(l.sig), resp.State, err)
				return
			}
		}
	}
}

// Done resolves a lease whose result was published: the server already
// freed the lease when the PUT landed, so only the heartbeat stops.
func (l *clientLease) Done() { l.finish(false) }

// Release returns the signature to the queue without a result.
func (l *clientLease) Release() { l.finish(true) }

func (l *clientLease) finish(release bool) {
	l.once.Do(func() {
		close(l.stop)
		l.hb.Wait()
		if release && !l.c.offline() {
			// Best-effort: an unreachable server expires the lease by TTL.
			l.c.leaseCall(context.Background(), releasePath, leaseRequest{Sig: l.sig, Token: l.token})
		}
	})
}
