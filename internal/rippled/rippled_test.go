package rippled

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/runner"
)

// result is the payload shape round-tripped in these tests.
type result struct {
	Name string
	N    int
}

// fastOptions are ClientOptions tuned for tests: short everything.
func fastOptions() ClientOptions {
	return ClientOptions{
		HTTPClient:     &http.Client{Timeout: 2 * time.Second},
		Retries:        2,
		RetryBackoff:   2 * time.Millisecond,
		LeaseTTL:       300 * time.Millisecond,
		PollInterval:   5 * time.Millisecond,
		OutageCooldown: 200 * time.Millisecond,
	}
}

// newTestServer starts a rippled over a fresh store directory and
// returns the server, its httptest wrapper, and the store directory.
func newTestServer(t *testing.T, opts ServerOptions) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, dir
}

func newTestClient(t *testing.T, url string, opts ClientOptions) *Client {
	t.Helper()
	c, err := NewClient(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, ts, dir := newTestServer(t, ServerOptions{})
	c1 := newTestClient(t, ts.URL, fastOptions())
	c2 := newTestClient(t, ts.URL, fastOptions())

	const sig = "cell|app=web|policy=ripple"
	in := result{Name: "tables", N: 42}
	if err := c1.Put(sig, &in); err != nil {
		t.Fatal(err)
	}
	raw, st := c2.Lookup(sig)
	if st != runner.StatusHit {
		t.Fatalf("lookup via second client = %v, want StatusHit", st)
	}
	var out result
	if err := json.Unmarshal(raw, &out); err != nil || out != in {
		t.Fatalf("round trip = %+v (%v)", out, err)
	}
	if _, st := c2.Lookup("never-stored"); st != runner.StatusMiss {
		t.Fatalf("absent entry = %v, want StatusMiss", st)
	}
	if s := srv.Stats(); s.Puts != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("server stats = %+v", s)
	}

	// The on-disk entry a rippled PUT produces is byte-identical to what
	// a local -cachedir Put writes: warm directories stay interchangeable.
	localDir := t.TempDir()
	local, err := runner.OpenStore(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Put(sig, &in); err != nil {
		t.Fatal(err)
	}
	name := runner.Key(sig) + ".json"
	got, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(localDir, name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server-written entry differs from local store entry:\n%s\nvs\n%s", got, want)
	}
}

func TestServerRejectsKeyAndSigMismatch(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{})
	body := `{"Name":"x"}`
	sum := sha256.Sum256([]byte(body))

	do := func(method, url, sig string) int {
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if sig != "" {
			req.Header.Set(headerSig, sig)
		}
		req.Header.Set(headerSHA, hex.EncodeToString(sum[:]))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Key that is not the hash of the claimed signature: never accepted.
	wrong := ts.URL + storePrefix + runner.Key("other-sig")
	if code := do(http.MethodPut, wrong, "claimed-sig"); code != http.StatusBadRequest {
		t.Fatalf("mismatched key PUT = %d, want 400", code)
	}
	if code := do(http.MethodGet, wrong, "claimed-sig"); code != http.StatusBadRequest {
		t.Fatalf("mismatched key GET = %d, want 400", code)
	}
	// Missing signature header: rejected.
	right := ts.URL + storePrefix + runner.Key("claimed-sig")
	if code := do(http.MethodPut, right, ""); code != http.StatusBadRequest {
		t.Fatalf("missing sig header = %d, want 400", code)
	}
	// Valid addressing for contrast.
	if code := do(http.MethodPut, right, "claimed-sig"); code != http.StatusNoContent {
		t.Fatalf("valid PUT = %d, want 204", code)
	}
}

func TestServerRejectsBadPutBodies(t *testing.T) {
	_, ts, dir := newTestServer(t, ServerOptions{})
	const sig = "sig-bad-bodies"
	url := ts.URL + storePrefix + runner.Key(sig)

	put := func(body, sha string) int {
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(headerSig, sig)
		if sha != "" {
			req.Header.Set(headerSHA, sha)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put(`{not json`, ""); code != http.StatusBadRequest {
		t.Fatalf("invalid JSON = %d, want 400", code)
	}
	if code := put(``, ""); code != http.StatusBadRequest {
		t.Fatalf("empty body = %d, want 400", code)
	}
	// A body that does not hash to its X-Ripple-Sha256 was damaged in
	// flight: refused, nothing written.
	if code := put(`{"Name":"x"}`, strings.Repeat("0", 64)); code != http.StatusBadRequest {
		t.Fatalf("sha mismatch = %d, want 400", code)
	}
	if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
		t.Fatalf("rejected PUTs left files behind: %v (%v)", ents, err)
	}
}

func TestServerQuarantinesCorruptEntryOverWire(t *testing.T) {
	_, ts, dir := newTestServer(t, ServerOptions{})
	c := newTestClient(t, ts.URL, fastOptions())
	const sig = "sig-corrupt"

	// Plant garbage exactly where the entry would live.
	path := filepath.Join(dir, runner.Key(sig)+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// First read classifies corrupt (410 on the wire) and quarantines.
	if _, st := c.Lookup(sig); st != runner.StatusCorrupt {
		t.Fatalf("corrupt entry = %v, want StatusCorrupt", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", runner.Key(sig)+".json")); err != nil {
		t.Fatalf("damaged entry not preserved in quarantine: %v", err)
	}
	// Second read is a clean miss; the slot is reusable.
	if _, st := c.Lookup(sig); st != runner.StatusMiss {
		t.Fatal("quarantined entry did not become a miss")
	}
	if err := c.Put(sig, &result{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if _, st := c.Lookup(sig); st != runner.StatusHit {
		t.Fatal("slot unusable after quarantine")
	}
}

func TestClientQuarantineRequest(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{})
	c := newTestClient(t, ts.URL, fastOptions())
	const sig = "sig-q"
	if err := c.Put(sig, &result{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	path, err := c.Quarantine(sig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("quarantine path %q not on disk: %v", path, err)
	}
	if _, st := c.Lookup(sig); st != runner.StatusMiss {
		t.Fatal("entry still served after quarantine")
	}
	// Quarantining a missing entry is an error, not a retry storm.
	if _, err := c.Quarantine("absent"); err == nil {
		t.Fatal("quarantining a missing entry succeeded")
	}
}

// TestClientLookupRetriesETagMismatch: a payload that does not hash to
// its ETag was damaged in flight; the client must re-fetch rather than
// decode garbage, and report a miss once retries are spent.
func TestClientLookupRetriesETagMismatch(t *testing.T) {
	var gets atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+storePrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		w.Header().Set("ETag", `"`+strings.Repeat("0", 64)+`"`)
		w.Write([]byte(`{"Name":"tampered"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	opts := fastOptions()
	opts.Retries = 2
	c := newTestClient(t, ts.URL, opts)
	if _, st := c.Lookup("sig-etag"); st != runner.StatusMiss {
		t.Fatalf("tampered entry = %v, want StatusMiss (never a hit)", st)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("client fetched %d times, want 1 + 2 retries", got)
	}
}

// TestClientOutageBreaker: a dead server costs one round of failures,
// then the breaker opens and every operation degrades instantly.
func TestClientOutageBreaker(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing is listening anymore

	var log strings.Builder
	opts := fastOptions()
	opts.Log = &log
	c := newTestClient(t, url, opts)

	if _, st := c.Lookup("sig-down"); st != runner.StatusMiss {
		t.Fatalf("lookup against dead server = %v, want StatusMiss", st)
	}
	if !c.offline() {
		t.Fatal("breaker did not open after network failure")
	}
	if !strings.Contains(log.String(), "degrading to local compute") {
		t.Fatalf("degradation not logged: %q", log.String())
	}
	// While the breaker is open: everything short-circuits.
	start := time.Now()
	if _, st := c.Lookup("sig-down"); st != runner.StatusMiss {
		t.Fatal("breaker-open lookup not a miss")
	}
	raw, lease, err := c.Coordinate(t.Context(), "sig-down")
	if raw != nil || lease != nil || err != nil {
		t.Fatalf("breaker-open Coordinate = (%v, %v, %v), want degrade", raw, lease, err)
	}
	err = c.Put("sig-down", &result{})
	if err == nil || !runner.Transient(err) {
		t.Fatalf("breaker-open Put error = %v, want transient", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("breaker-open operations took %v; breaker is not short-circuiting", waited)
	}
}

// TestCoordinateLeaseLifecycle drives the wire-level lease flow: a
// granted worker publishes; a second worker coordinating the same
// signature receives the published bytes instead of a lease.
func TestCoordinateLeaseLifecycle(t *testing.T) {
	srv, ts, _ := newTestServer(t, ServerOptions{})
	a := newTestClient(t, ts.URL, fastOptions())
	b := newTestClient(t, ts.URL, fastOptions())
	const sig = "sig-lease"

	raw, lease, err := a.Coordinate(t.Context(), sig)
	if err != nil || raw != nil || lease == nil {
		t.Fatalf("first Coordinate = (%v, %v, %v), want a granted lease", raw, lease, err)
	}
	if err := a.Put(sig, &result{Name: "published", N: 7}); err != nil {
		t.Fatal(err)
	}
	lease.Done()

	raw, lease2, err := b.Coordinate(t.Context(), sig)
	if err != nil || lease2 != nil {
		t.Fatalf("second Coordinate = (lease %v, err %v), want published bytes", lease2, err)
	}
	var out result
	if err := json.Unmarshal(raw, &out); err != nil || out.Name != "published" || out.N != 7 {
		t.Fatalf("published bytes = %s (%v)", raw, err)
	}
	if s := srv.Stats(); s.LeasesGranted != 1 || s.LeasesLive != 0 {
		t.Fatalf("server stats = %+v, want one granted lease, none live", s)
	}
}

// TestCoordinateReleaseReturnsSignatureToQueue: a worker that fails
// releases; the next coordinator wins a fresh lease immediately instead
// of waiting out the TTL.
func TestCoordinateReleaseReturnsSignatureToQueue(t *testing.T) {
	// Long TTL: if release did not free the lease, the second acquire
	// would sit busy far longer than the test budget.
	_, ts, _ := newTestServer(t, ServerOptions{LeaseTTL: time.Hour})
	opts := fastOptions()
	opts.LeaseTTL = time.Hour
	a := newTestClient(t, ts.URL, opts)
	b := newTestClient(t, ts.URL, opts)
	const sig = "sig-release"

	_, lease, err := a.Coordinate(t.Context(), sig)
	if err != nil || lease == nil {
		t.Fatalf("first Coordinate: lease %v err %v", lease, err)
	}
	lease.Release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, lease2, err := b.Coordinate(t.Context(), sig)
		if err != nil || lease2 == nil {
			t.Errorf("post-release Coordinate: lease %v err %v", lease2, err)
			return
		}
		lease2.Release()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("released signature not re-acquirable: second Coordinate hung")
	}
}

// TestCoordinateHeartbeatKeepsLeaseAlive: a computation outliving the
// TTL stays covered because the client renews in the background.
func TestCoordinateHeartbeatKeepsLeaseAlive(t *testing.T) {
	srv, ts, _ := newTestServer(t, ServerOptions{LeaseTTL: 150 * time.Millisecond})
	opts := fastOptions()
	opts.LeaseTTL = 150 * time.Millisecond
	a := newTestClient(t, ts.URL, opts)
	b := newTestClient(t, ts.URL, opts)
	const sig = "sig-heartbeat"

	_, lease, err := a.Coordinate(t.Context(), sig)
	if err != nil || lease == nil {
		t.Fatalf("Coordinate: lease %v err %v", lease, err)
	}
	defer lease.Release()

	// Simulate a computation running for several TTLs. If heartbeats
	// were not landing, b would steal the lease the moment it expired.
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := b.leaseCall(t.Context(), acquirePath,
			leaseRequest{Sig: sig, Owner: "b", TTLMillis: 150})
		if err != nil {
			t.Fatal(err)
		}
		if resp.State != stateBusy {
			t.Fatalf("lease state = %q mid-computation, want busy (heartbeat lapsed)", resp.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := srv.Stats(); s.LeasesStolen != 0 {
		t.Fatalf("lease stolen despite heartbeats: %+v", s)
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{})
	c := newTestClient(t, ts.URL, fastOptions())
	if err := c.Put("sig-s", &result{}); err != nil {
		t.Fatal(err)
	}
	c.Lookup("sig-s")
	resp, err := http.Get(ts.URL + statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Puts != 1 || stats.Hits != 1 {
		t.Fatalf("wire stats = %+v", stats)
	}
}

func TestNewClientRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := NewClient(bad, ClientOptions{}); err == nil {
			t.Errorf("NewClient(%q) accepted", bad)
		}
	}
	if _, err := NewClient("http://127.0.0.1:0", ClientOptions{}); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}
