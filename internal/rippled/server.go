package rippled

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"ripple/internal/runner"
)

// DefaultLeaseTTL bounds how long a granted compute lease lives without
// renewal. Workers heartbeat at a fraction of this, so a crashed worker
// returns its signatures to the queue within one TTL.
const DefaultLeaseTTL = 30 * time.Second

// maxEntryBytes bounds one store entry on the wire; result payloads are
// JSON tables and curves, far below this.
const maxEntryBytes = 256 << 20

// ServerOptions configures a Server.
type ServerOptions struct {
	// LeaseTTL is the default and maximum compute-lease duration
	// (clients may ask for less, never more); <= 0 uses DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Log receives one line per notable event (nil silences).
	Log io.Writer
	// now overrides the clock in tests.
	now func() time.Time
}

// Server exposes a filesystem result store plus a lease table over
// HTTP. It is an http.Handler; wiring it to a listener is the caller's
// job (see cmd/rippled).
type Server struct {
	store  *runner.Store
	leases *leaseTable
	ttl    time.Duration
	log    io.Writer
	mux    *http.ServeMux

	hits, misses, corrupt, puts atomic.Uint64
}

// NewServer builds a server over an open store.
func NewServer(store *runner.Store, opts ServerOptions) *Server {
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	s := &Server{
		store:  store,
		leases: newLeaseTable(opts.now),
		ttl:    ttl,
		log:    opts.Log,
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("GET "+storePrefix+"{key}", s.handleGet)
	s.mux.HandleFunc("PUT "+storePrefix+"{key}", s.handlePut)
	s.mux.HandleFunc("POST "+storePrefix+"{key}/quarantine", s.handleQuarantine)
	s.mux.HandleFunc("POST "+acquirePath, s.handleAcquire)
	s.mux.HandleFunc("POST "+renewPath, s.handleRenew)
	s.mux.HandleFunc("POST "+releasePath, s.handleRelease)
	s.mux.HandleFunc("GET "+statsPath, s.handleStats)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats snapshots the server's counters.
func (s *Server) Stats() StatsReply {
	granted, stolen, busy, live := s.leases.counters()
	return StatsReply{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Corrupt:       s.corrupt.Load(),
		Puts:          s.puts.Load(),
		LeasesGranted: granted,
		LeasesStolen:  stolen,
		LeasesBusy:    busy,
		LeasesLive:    live,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, format+"\n", args...)
	}
}

// sigFor extracts and cross-checks the request's signature against its
// content key, so the store's embedded-signature validation survives the
// wire: a key that is not the hash of its claimed signature is rejected.
func sigFor(w http.ResponseWriter, r *http.Request) (string, bool) {
	sig := r.Header.Get(headerSig)
	if sig == "" {
		http.Error(w, "rippled: missing "+headerSig+" header", http.StatusBadRequest)
		return "", false
	}
	if runner.Key(sig) != r.PathValue("key") {
		http.Error(w, "rippled: key is not the hash of the claimed signature", http.StatusBadRequest)
		return "", false
	}
	return sig, true
}

func etagOf(raw []byte) string {
	sum := sha256.Sum256(raw)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sig, ok := sigFor(w, r)
	if !ok {
		return
	}
	raw, st := s.store.Lookup(sig)
	switch st {
	case runner.StatusHit:
		s.hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", etagOf(raw))
		w.Write(raw)
	case runner.StatusCorrupt:
		// Lookup already quarantined the damaged entry; 410 (not 404)
		// lets the client count it as corruption rather than a miss.
		s.corrupt.Add(1)
		s.logf("rippled: quarantined corrupt entry %s", r.PathValue("key"))
		http.Error(w, "rippled: entry was corrupt and has been quarantined", http.StatusGone)
	default:
		s.misses.Add(1)
		http.Error(w, "rippled: no entry", http.StatusNotFound)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	sig, ok := sigFor(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "rippled: entry too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "rippled: reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) == 0 || !json.Valid(body) {
		http.Error(w, "rippled: body is not a JSON document", http.StatusBadRequest)
		return
	}
	if want := r.Header.Get(headerSHA); want != "" {
		sum := sha256.Sum256(body)
		if hex.EncodeToString(sum[:]) != want {
			http.Error(w, "rippled: body does not hash to "+headerSHA, http.StatusBadRequest)
			return
		}
	}
	if err := s.store.Put(sig, json.RawMessage(body)); err != nil {
		http.Error(w, "rippled: store put: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.puts.Add(1)
	// The result is published: any compute lease on this signature is
	// moot, so free it rather than making waiters sit out the TTL.
	s.leases.complete(sig)
	w.Header().Set("ETag", etagOf(body))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	sig, ok := sigFor(w, r)
	if !ok {
		return
	}
	path, err := s.store.Quarantine(sig)
	if err != nil {
		http.Error(w, "rippled: quarantine: "+err.Error(), http.StatusNotFound)
		return
	}
	s.corrupt.Add(1)
	s.logf("rippled: quarantined %s on client request", r.PathValue("key"))
	writeJSON(w, http.StatusOK, quarantineReply{Path: path})
}

// readLeaseRequest decodes and validates a lease POST body.
func readLeaseRequest(w http.ResponseWriter, r *http.Request) (leaseRequest, bool) {
	var req leaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "rippled: bad lease request: "+err.Error(), http.StatusBadRequest)
		return req, false
	}
	if req.Sig == "" {
		http.Error(w, "rippled: lease request missing sig", http.StatusBadRequest)
		return req, false
	}
	return req, true
}

// clampTTL resolves a requested TTL against the server bound.
func (s *Server) clampTTL(millis int64) time.Duration {
	ttl := time.Duration(millis) * time.Millisecond
	if ttl <= 0 || ttl > s.ttl {
		return s.ttl
	}
	return ttl
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	req, ok := readLeaseRequest(w, r)
	if !ok {
		return
	}
	// A published result beats any lease: the acquirer should fetch, not
	// compute. A corrupt entry is quarantined here (same semantics as a
	// GET) and the signature falls through to a grant for recompute.
	if _, st := s.store.Lookup(req.Sig); st == runner.StatusHit {
		writeJSON(w, http.StatusOK, leaseResponse{State: stateDone})
		return
	} else if st == runner.StatusCorrupt {
		s.corrupt.Add(1)
		s.logf("rippled: quarantined corrupt entry %s during acquire", runner.Key(req.Sig))
	}
	ttl := s.clampTTL(req.TTLMillis)
	token, holder, remaining, granted := s.leases.acquire(req.Sig, req.Owner, ttl)
	if !granted {
		writeJSON(w, http.StatusOK, leaseResponse{
			State:            stateBusy,
			Holder:           holder,
			RetryAfterMillis: remaining.Milliseconds(),
		})
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{State: stateGranted, Token: token, RetryAfterMillis: remaining.Milliseconds()})
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	req, ok := readLeaseRequest(w, r)
	if !ok {
		return
	}
	if !s.leases.renew(req.Sig, req.Token, s.clampTTL(req.TTLMillis)) {
		writeJSON(w, http.StatusConflict, leaseResponse{State: stateLost})
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{State: stateGranted, Token: req.Token})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	req, ok := readLeaseRequest(w, r)
	if !ok {
		return
	}
	if !s.leases.release(req.Sig, req.Token) {
		writeJSON(w, http.StatusConflict, leaseResponse{State: stateLost})
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{State: stateReleased})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
