package rippled

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func newTestLeases(c *fakeClock) *leaseTable { return newLeaseTable(c.now) }

func TestLeaseAcquireGrantAndBusy(t *testing.T) {
	clk := newFakeClock()
	lt := newTestLeases(clk)
	tok, _, _, granted := lt.acquire("sig", "alice", time.Minute)
	if !granted || tok == "" {
		t.Fatalf("first acquire = %q granted=%t", tok, granted)
	}
	_, holder, remaining, granted := lt.acquire("sig", "bob", time.Minute)
	if granted {
		t.Fatal("second acquire granted while lease live")
	}
	if holder != "alice" || remaining != time.Minute {
		t.Fatalf("busy reply holder=%q remaining=%v", holder, remaining)
	}
	// A different signature is independent.
	if _, _, _, g := lt.acquire("other", "bob", time.Minute); !g {
		t.Fatal("unrelated signature refused")
	}
}

func TestLeaseExpiryReturnsToQueue(t *testing.T) {
	clk := newFakeClock()
	lt := newTestLeases(clk)
	tok1, _, _, _ := lt.acquire("sig", "alice", time.Minute)
	clk.advance(time.Minute) // expires exactly at deadline
	tok2, _, _, granted := lt.acquire("sig", "bob", time.Minute)
	if !granted {
		t.Fatal("expired lease not stolen")
	}
	if tok1 == tok2 {
		t.Fatal("stolen lease reused the old token")
	}
	// The displaced holder's token is dead for renew and release alike.
	if lt.renew("sig", tok1, time.Minute) {
		t.Fatal("expired token renewed")
	}
	if lt.release("sig", tok1) {
		t.Fatal("expired token released someone else's lease")
	}
	granted2, stolen, _, live := lt.counters()
	if granted2 != 2 || stolen != 1 || live != 1 {
		t.Fatalf("counters granted=%d stolen=%d live=%d", granted2, stolen, live)
	}
}

func TestLeaseRenewExtends(t *testing.T) {
	clk := newFakeClock()
	lt := newTestLeases(clk)
	tok, _, _, _ := lt.acquire("sig", "alice", time.Minute)
	clk.advance(50 * time.Second)
	if !lt.renew("sig", tok, time.Minute) {
		t.Fatal("live lease refused renewal")
	}
	clk.advance(50 * time.Second) // 100s after acquire, 50s after renew
	if _, _, _, granted := lt.acquire("sig", "bob", time.Minute); granted {
		t.Fatal("renewed lease stolen before its extended expiry")
	}
	// An expired lease cannot be renewed back to life.
	clk.advance(time.Minute)
	if lt.renew("sig", tok, time.Minute) {
		t.Fatal("expired lease resurrected by renew")
	}
}

func TestLeaseReleaseFrees(t *testing.T) {
	clk := newFakeClock()
	lt := newTestLeases(clk)
	tok, _, _, _ := lt.acquire("sig", "alice", time.Minute)
	if !lt.release("sig", tok) {
		t.Fatal("holder could not release")
	}
	if _, _, _, granted := lt.acquire("sig", "bob", time.Minute); !granted {
		t.Fatal("released signature not acquirable")
	}
	// Double release is a stale token.
	if lt.release("sig", tok) {
		t.Fatal("stale release succeeded")
	}
}

func TestLeaseCompleteFreesAnyHolder(t *testing.T) {
	clk := newFakeClock()
	lt := newTestLeases(clk)
	lt.acquire("sig", "alice", time.Minute)
	lt.complete("sig") // e.g. a PUT landed, whoever held the lease
	if _, _, _, live := lt.counters(); live != 0 {
		t.Fatalf("%d live leases after complete", live)
	}
}
