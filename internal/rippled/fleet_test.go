package rippled

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/runner"
)

// fleetJobs builds the K-signature job set every worker in these tests
// drains: same signatures everywhere, so the fleet's single-flight is
// what decides who computes. computed counts executions across ALL
// workers; delay stretches each computation so workers overlap.
func fleetJobs(k int, computed *atomic.Int64, delay time.Duration) []runner.Job {
	jobs := make([]runner.Job, 0, k)
	for i := 0; i < k; i++ {
		i := i
		sig := fmt.Sprintf("fleet|cell=%d", i)
		jobs = append(jobs, runner.NewJob(sig, sig, 1, func(context.Context) (*result, error) {
			computed.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
			return &result{Name: "cell", N: i * 11}, nil
		}))
	}
	return jobs
}

// TestFleetSingleFlightStress is the acceptance test for fleet-scope
// deduplication: many worker pools — separate Pool instances, as
// separate processes would be — hammer the same K signatures through
// one rippled. Each signature must be computed exactly once fleet-wide.
func TestFleetSingleFlightStress(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{LeaseTTL: 300 * time.Millisecond})
	const workers, k = 6, 5
	var computed atomic.Int64

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		c := newTestClient(t, ts.URL, fastOptions())
		pool := runner.New(runner.Options{Workers: 4, Store: c})
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- pool.RunAll(context.Background(), fleetJobs(k, &computed, 10*time.Millisecond))
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := computed.Load(); got != k {
		t.Fatalf("fleet computed %d times for %d signatures; duplicates slipped through single-flight", got, k)
	}
}

// TestFleetMatchesSerialByteForByte: two worker pools draining one
// sweep through one rippled must leave the store byte-identical to a
// serial local run — signatures exclude worker count and backend, and
// the server persists the client's exact payload bytes.
func TestFleetMatchesSerialByteForByte(t *testing.T) {
	const k = 6

	// Serial baseline: one pool, one worker, local directory.
	serialDir := t.TempDir()
	serialStore, err := runner.OpenStore(serialDir)
	if err != nil {
		t.Fatal(err)
	}
	var serialComputed atomic.Int64
	serial := runner.New(runner.Options{Workers: 1, Store: serialStore})
	if err := serial.RunAll(context.Background(), fleetJobs(k, &serialComputed, 0)); err != nil {
		t.Fatal(err)
	}

	// Fleet run: two pools racing through one rippled.
	_, ts, fleetDir := newTestServer(t, ServerOptions{LeaseTTL: 300 * time.Millisecond})
	var fleetComputed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		c := newTestClient(t, ts.URL, fastOptions())
		pool := runner.New(runner.Options{Workers: 3, Store: c})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.RunAll(context.Background(), fleetJobs(k, &fleetComputed, 5*time.Millisecond)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := fleetComputed.Load(); got != k {
		t.Fatalf("fleet computed %d times for %d signatures", got, k)
	}

	// Every entry the fleet published must be byte-identical to the
	// serial run's — same keys, same bytes.
	for i := 0; i < k; i++ {
		name := runner.Key(fmt.Sprintf("fleet|cell=%d", i)) + ".json"
		want, err := os.ReadFile(filepath.Join(serialDir, name))
		if err != nil {
			t.Fatalf("serial entry %d: %v", i, err)
		}
		got, err := os.ReadFile(filepath.Join(fleetDir, name))
		if err != nil {
			t.Fatalf("fleet entry %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("entry %d differs between serial and fleet runs:\n%s\nvs\n%s", i, want, got)
		}
	}
}

// TestFleetWarmPoolComputesNothing: a pool started after the fleet
// populated the store performs zero computations — every job is a store
// or fleet hit.
func TestFleetWarmPoolComputesNothing(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{})
	const k = 4
	var cold atomic.Int64
	c1 := newTestClient(t, ts.URL, fastOptions())
	p1 := runner.New(runner.Options{Workers: 2, Store: c1})
	if err := p1.RunAll(context.Background(), fleetJobs(k, &cold, 0)); err != nil {
		t.Fatal(err)
	}
	if cold.Load() != k {
		t.Fatalf("cold run computed %d, want %d", cold.Load(), k)
	}

	var warm atomic.Int64
	c2 := newTestClient(t, ts.URL, fastOptions())
	p2 := runner.New(runner.Options{Workers: 2, Store: c2})
	if err := p2.RunAll(context.Background(), fleetJobs(k, &warm, 0)); err != nil {
		t.Fatal(err)
	}
	if warm.Load() != 0 {
		t.Fatalf("warm run computed %d times, want 0", warm.Load())
	}
	if st := p2.Stats(); st.StoreHits != k || st.Computed != 0 {
		t.Fatalf("warm pool stats = %+v", st)
	}
}

// TestFleetOutageMidSweepDegradesToLocal is the acceptance test for
// coordinator loss: rippled dies partway through a sweep and the sweep
// must still complete — every remaining signature computes locally,
// nothing fails, nothing hangs.
func TestFleetOutageMidSweepDegradesToLocal(t *testing.T) {
	dir := t.TempDir()
	store, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{})
	ts := httptest.NewServer(srv)
	killed := make(chan struct{})
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			// CloseClientConnections first so in-flight and idle conns die
			// immediately; Close in a goroutine since it waits for stragglers.
			ts.CloseClientConnections()
			go ts.Close()
			close(killed)
		})
	}
	defer kill()

	opts := fastOptions()
	opts.HTTPClient = &http.Client{Timeout: 500 * time.Millisecond}
	c := newTestClient(t, ts.URL, opts)
	pool := runner.New(runner.Options{Workers: 2, Store: c})

	const k = 12
	var computed atomic.Int64
	jobs := make([]runner.Job, 0, k)
	for i := 0; i < k; i++ {
		i := i
		sig := fmt.Sprintf("outage|cell=%d", i)
		jobs = append(jobs, runner.NewJob(sig, sig, 1, func(context.Context) (*result, error) {
			// The third computation murders the coordinator mid-sweep.
			if computed.Add(1) == 3 {
				kill()
			}
			return &result{Name: "cell", N: i}, nil
		}))
	}

	done := make(chan error, 1)
	go func() { done <- pool.RunAll(context.Background(), jobs) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sweep failed after coordinator death: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sweep hung after coordinator death")
	}
	<-killed // the kill really happened mid-sweep
	if got := computed.Load(); got != k {
		t.Fatalf("computed %d of %d signatures (no duplicates expected within one pool)", got, k)
	}
	if st := pool.Stats(); st.Errors != 0 {
		t.Fatalf("pool stats after outage = %+v, want zero errors", st)
	}
}
