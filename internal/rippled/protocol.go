package rippled

// Wire protocol, shared by Server and Client.
//
// Store entries are addressed by the content key runner.Key(sig) — the
// SHA-256 of the full job signature — mirroring the on-disk layout. The
// full signature always rides along in the X-Ripple-Sig header so the
// server can preserve the store's embedded-signature validation (a key
// that does not hash from its signature is rejected, never served).
//
//	GET    /v1/store/{key}     → 200 raw result JSON   (hit; ETag = "sha256 of body")
//	                             404                   (miss)
//	                             410                   (corrupt; quarantined server-side)
//	HEAD   /v1/store/{key}     → as GET, no body
//	PUT    /v1/store/{key}     → 204                   (atomic write; X-Ripple-Sha256 verified)
//	POST   /v1/store/{key}/quarantine → 200 {"path":…} (entry moved aside)
//	POST   /v1/lease/acquire   → 200 leaseResponse     (granted | busy | done)
//	POST   /v1/lease/renew     → 200 granted | 409 lost
//	POST   /v1/lease/release   → 200 released | 409 lost
//	GET    /v1/stats           → 200 StatsReply
const (
	storePrefix = "/v1/store/"
	acquirePath = "/v1/lease/acquire"
	renewPath   = "/v1/lease/renew"
	releasePath = "/v1/lease/release"
	statsPath   = "/v1/stats"

	// headerSig carries the full job signature of a store request.
	headerSig = "X-Ripple-Sig"
	// headerSHA carries the client-computed SHA-256 (hex) of a PUT body;
	// the server refuses a body that does not hash to it.
	headerSHA = "X-Ripple-Sha256"
)

// Lease states on the wire.
const (
	stateGranted  = "granted"  // caller holds the lease; compute
	stateBusy     = "busy"     // live holder elsewhere; poll the store
	stateDone     = "done"     // result already published; fetch it
	stateLost     = "lost"     // renewal/release token no longer valid
	stateReleased = "released" // release accepted
)

// leaseRequest is the body of every /v1/lease/* POST.
type leaseRequest struct {
	Sig   string `json:"sig"`
	Owner string `json:"owner,omitempty"`
	Token string `json:"token,omitempty"`
	// TTLMillis is the requested lease duration; the server clamps it to
	// its configured maximum.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// leaseResponse is the body of every /v1/lease/* reply.
type leaseResponse struct {
	State  string `json:"state"`
	Token  string `json:"token,omitempty"`
	Holder string `json:"holder,omitempty"`
	// RetryAfterMillis is the busy holder's remaining TTL: the longest a
	// waiter could need to poll before the lease frees or expires.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// quarantineReply is the body of a /v1/store/{key}/quarantine reply.
type quarantineReply struct {
	Path string `json:"path"`
}

// StatsReply is the /v1/stats surface (also cmd/rippled's exit report).
type StatsReply struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Corrupt       uint64 `json:"corrupt"`
	Puts          uint64 `json:"puts"`
	LeasesGranted uint64 `json:"leases_granted"`
	LeasesStolen  uint64 `json:"leases_stolen"`
	LeasesBusy    uint64 `json:"leases_busy"`
	LeasesLive    int    `json:"leases_live"`
}
