// Package frontend is the trace-driven performance model: it drives a
// basic-block execution trace through the branch-predictor-directed
// prefetcher and the three-level instruction cache hierarchy of Table II,
// executes Ripple's injected invalidation/demote hints, and produces the
// cycle, MPKI, coverage, and accuracy numbers behind every figure of the
// paper's evaluation.
//
// The cycle model is deliberately first-order: cycles = instructions x
// BaseCPI + the exposed latency of every demand instruction miss, with
// prefetch fills off the critical path. All policies and prefetchers are
// charged identically, so relative speedups — the quantity the paper
// reports — are preserved even though absolute IPC differs from the
// authors' out-of-order ZSim testbed (see DESIGN.md, substitutions).
package frontend

import "ripple/internal/cache"

// Params mirrors the simulator parameters of Table II.
type Params struct {
	L1I cache.Config
	L2  cache.Config
	L3  cache.Config

	// Latencies in cycles. L1ILat is the pipelined hit latency (not
	// charged per access); the others are charged per demand miss that is
	// served at that level.
	L1ILat int
	L2Lat  int
	L3Lat  int
	MemLat int

	// BaseCPI absorbs every stall source other than instruction misses
	// (data misses, dependencies, mispredict resteers), which are common
	// to all configurations under comparison.
	BaseCPI float64

	// HintCPI is the execution cost of one injected invalidate/demote
	// hint. The hint is a single dependency-free µop (cldemote-like) that
	// the out-of-order backend issues down a spare port, so it is far
	// cheaper than an average instruction; its main costs — I-footprint
	// bloat and fetch bandwidth — are modeled directly by the rewritten
	// layout.
	HintCPI float64

	// FreqGHz is reported for context only (Table II: 2.5 GHz all-core
	// turbo).
	FreqGHz float64
}

// DefaultParams returns the Table II configuration: 32KiB/8-way L1I,
// 1MiB/16-way L2, 10MiB/20-way L3, 64B lines, 3/12/36/260-cycle latencies.
func DefaultParams() Params {
	return Params{
		L1I:     cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:      cache.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64},
		L3:      cache.Config{SizeBytes: 10 << 20, Ways: 20, LineBytes: 64},
		L1ILat:  3,
		L2Lat:   12,
		L3Lat:   36,
		MemLat:  260,
		BaseCPI: 0.55,
		HintCPI: 0.12,
		FreqGHz: 2.5,
	}
}
