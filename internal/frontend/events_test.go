package frontend

import (
	"errors"
	"reflect"
	"testing"

	"ripple/internal/blockseq"
	"ripple/internal/opt"
	"ripple/internal/replacement"
	"ripple/internal/workload"
)

// drainEvents pulls one full pass out of an event source, failing the
// test on a stream error.
func drainEvents(t *testing.T, src opt.EventSource) []opt.Event {
	t.Helper()
	seq := src.Open()
	var out []opt.Event
	for {
		e, ok := seq.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// opaque hides every optional capability of a block source (LenHint in
// particular), forcing the buffered warmup path in AccessEvents.
func opaque(src blockseq.Source) blockseq.Source {
	return blockseq.Func(func() blockseq.Seq { return src.Open() })
}

func TestDemandEventsMatchesDemandLines(t *testing.T) {
	app, err := workload.Build(workload.Model{
		Name: "ev-demand", Seed: 7,
		Funcs: 30, ServiceFuncs: 3, UtilityFuncs: 3, Levels: 3,
		BlocksMin: 3, BlocksMax: 6, BlockBytesMin: 16, BlockBytesMax: 96,
		PCond: 0.3, PCall: 0.2, PICall: 0.05, PIJump: 0.02,
		PLoopBack: 0.1, PBiasStrong: 0.8,
		CalleeMin: 1, CalleeMax: 2, IndirectFanout: 2,
		ZipfRequest: 0.9, RequestsPerBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := blockseq.SliceSource(app.Trace(0, 4000))
	lines, _, err := DemandLines(app.Prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []blockseq.Source{tr, opaque(tr)} {
		es := DemandEvents(app.Prog, src)
		for pass := 0; pass < 2; pass++ {
			got := drainEvents(t, es)
			if len(got) != len(lines) {
				t.Fatalf("pass %d: %d events, DemandLines has %d", pass, len(got), len(lines))
			}
			for i, e := range got {
				if e.Prefetch {
					t.Fatalf("demand source yielded a prefetch event at %d", i)
				}
				if e.Line != lines[i] {
					t.Fatalf("pass %d: event %d line %#x, want %#x", pass, i, e.Line, lines[i])
				}
			}
		}
	}
	if n, ok := opt.LenHint(DemandEvents(app.Prog, tr)); !ok || n < len(lines) {
		t.Fatalf("LenHint = %d,%v; want a capacity >= %d", n, ok, len(lines))
	}
	if _, ok := opt.LenHint(DemandEvents(app.Prog, opaque(tr))); ok {
		t.Fatal("opaque source leaked a LenHint")
	}
}

func TestAccessEventsMatchesRecordStream(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	tr := trace(0, 1, 2, 3, 4, 0, 1, 2, 3, 4)
	for _, warm := range []int{0, 4, len(tr), len(tr) + 5} {
		newOpts := func() (Options, error) {
			return Options{
				Policy:       replacement.NewLRU(),
				Prefetcher:   prefetchNLP(prog),
				WarmupBlocks: warm,
			}, nil
		}
		opts, _ := newOpts()
		opts.RecordStream = true
		res, err := Run(p, prog, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []blockseq.Source{tr, opaque(tr)} {
			es := AccessEvents(p, prog, src, newOpts)
			// Two passes must both reproduce the recorded stream exactly
			// (replayability is what the two-pass oracle engines rely on).
			for pass := 0; pass < 2; pass++ {
				got := drainEvents(t, es)
				want := res.Stream
				if len(want) == 0 {
					want = nil
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("warm=%d pass=%d: stream diverged:\n got %v\nwant %v", warm, pass, got, want)
				}
			}
		}
	}
}

func TestAccessEventsFeedsOracle(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	tr := trace(0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 2, 4)
	newOpts := func() (Options, error) {
		return Options{Policy: replacement.NewLRU(), Prefetcher: prefetchNLP(prog)}, nil
	}
	opts, _ := newOpts()
	opts.RecordStream = true
	res, err := Run(p, prog, tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := opt.Simulate(res.Stream, p.L1I, opt.ModeDemandMIN, false)
	got, err := opt.SimulateSource(AccessEvents(p, prog, tr, newOpts), p.L1I, opt.ModeDemandMIN, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming oracle over AccessEvents = %+v, slice path = %+v", got, want)
	}
}

func TestAccessEventsStop(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	tr := trace(0, 1, 2, 3, 4, 0, 1, 2, 3, 4)
	es := AccessEvents(p, prog, tr, func() (Options, error) {
		return Options{Policy: replacement.NewLRU()}, nil
	})
	seq := es.Open()
	if _, ok := seq.Next(); !ok {
		t.Fatal("empty stream")
	}
	st, ok := seq.(opt.EventStopper)
	if !ok {
		t.Fatal("access sequence does not implement opt.EventStopper")
	}
	st.Stop()
	st.Stop() // idempotent
	// An abandoned pass must not wedge later ones.
	if n := len(drainEvents(t, es)); n == 0 {
		t.Fatal("fresh pass after Stop yielded nothing")
	}
}

func TestAccessEventsPropagatesOptionsError(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	boom := errors.New("no options for you")
	es := AccessEvents(p, prog, trace(0, 1), func() (Options, error) {
		return Options{}, boom
	})
	seq := es.Open()
	if _, ok := seq.Next(); ok {
		t.Fatal("event yielded despite options error")
	}
	if err := seq.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
}

func TestAccessEventsPropagatesRunError(t *testing.T) {
	p := smallParams()
	p.L1I.SizeBytes = 100 // invalid geometry
	prog := loopProgram(t)
	es := AccessEvents(p, prog, trace(0, 1), func() (Options, error) {
		return Options{Policy: replacement.NewLRU()}, nil
	})
	seq := es.Open()
	for {
		if _, ok := seq.Next(); !ok {
			break
		}
	}
	if seq.Err() == nil {
		t.Fatal("bad geometry did not surface through Err")
	}
}
