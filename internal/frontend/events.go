package frontend

import (
	"sync"

	"ripple/internal/blockseq"
	"ripple/internal/opt"
	"ripple/internal/program"
)

// DemandEvents exposes the coalesced demand instruction-line stream of a
// block source as a replayable opt.EventSource — the streaming twin of
// DemandLines, yielding the identical sequence without materializing it.
// Each Open starts a fresh pass over the underlying (replayable) source.
func DemandEvents(prog *program.Program, src blockseq.Source) opt.EventSource {
	return &demandEvents{prog: prog, src: src}
}

type demandEvents struct {
	prog *program.Program
	src  blockseq.Source
}

// Open implements opt.EventSource.
func (d *demandEvents) Open() opt.EventSeq {
	return &demandSeq{prog: d.prog, seq: d.src.Open(), last: ^uint64(0)}
}

// LenHint sizes for the typical ~1.5 lines per block when the block count
// is known. Per the opt.LenHinter contract this is a capacity hint only.
func (d *demandEvents) LenHint() (int, bool) {
	if n, ok := blockseq.LenHint(d.src); ok {
		return n * 3 / 2, true
	}
	return 0, false
}

type demandSeq struct {
	prog  *program.Program
	seq   blockseq.Seq
	buf   [16]uint64
	lines []uint64
	i     int
	last  uint64
}

func (q *demandSeq) Next() (opt.Event, bool) {
	for {
		// Coalescing state (last) persists across blocks, exactly as in
		// DemandLinesSeq: sequential fetch stays within a line without
		// re-probing the cache.
		for q.i < len(q.lines) {
			l := q.lines[q.i]
			q.i++
			if l == q.last {
				continue
			}
			q.last = l
			return opt.Event{Line: l}, true
		}
		bid, ok := q.seq.Next()
		if !ok {
			return opt.Event{}, false
		}
		q.lines = q.prog.Block(bid).Lines(q.buf[:0])
		q.i = 0
	}
}

func (q *demandSeq) Err() error { return q.seq.Err() }

const (
	// accessEventBatch is the producer's event batch size; accessEventDepth
	// the channel depth. Together they bound the producer's run-ahead.
	accessEventBatch = 2048
	accessEventDepth = 4
)

// AccessEvents exposes the full demand+prefetch access stream of a
// configured frontend run as a replayable opt.EventSource: each Open
// re-runs the (deterministic) simulation with fresh policy/prefetcher
// state from newOpts and streams exactly the post-warmup events that
// Options.RecordStream would have materialized, batched through a bounded
// channel from a producing goroutine. This is what lets the oracle
// engines replay a simulated access stream twice without ever holding it
// in memory.
//
// newOpts must return an equivalent, freshly-stateful Options on every
// call (a shared Policy instance would carry state across passes and
// break replayability — the engine detects that and reports
// opt.ErrNotReplayable). RecordStream and the event hooks are overridden
// by the source itself.
//
// Abandoning a pass without draining it requires calling Stop (the
// returned sequences implement opt.EventStopper); the oracle engines do
// this on their error paths.
func AccessEvents(p Params, prog *program.Program, src blockseq.Source, newOpts func() (Options, error)) opt.EventSource {
	return &accessEvents{p: p, prog: prog, src: src, newOpts: newOpts}
}

type accessEvents struct {
	p       Params
	prog    *program.Program
	src     blockseq.Source
	newOpts func() (Options, error)
}

// LenHint estimates ~2 events per block (demand lines plus prefetch
// traffic) when the block count is known; a capacity hint only.
func (a *accessEvents) LenHint() (int, bool) {
	if n, ok := blockseq.LenHint(a.src); ok {
		return n * 2, true
	}
	return 0, false
}

type accessBatch struct {
	ev   []opt.Event
	err  error
	last bool
}

// Open implements opt.EventSource.
func (a *accessEvents) Open() opt.EventSeq {
	q := &accessSeq{
		ch:   make(chan accessBatch, accessEventDepth),
		quit: make(chan struct{}),
	}
	go a.produce(q)
	return q
}

// Warmup handling modes for the producer: the simulator excludes warmup
// events from the recorded stream only if the warmup boundary is actually
// crossed (shorter traces keep everything), so the producer must mirror
// snapshotWarm's truncation semantics exactly.
const (
	warmOff     = iota // emit everything
	warmDiscard        // boundary guaranteed (exact block count known): drop pre-boundary events
	warmBuffer         // boundary unknown: buffer, then drop or flush
)

func (a *accessEvents) produce(q *accessSeq) {
	defer close(q.ch)
	aborted := false
	send := func(b accessBatch) {
		if aborted {
			return
		}
		select {
		case q.ch <- b:
		case <-q.quit:
			aborted = true
		}
	}

	opts, err := a.newOpts()
	if err != nil {
		send(accessBatch{err: err, last: true})
		return
	}

	batch := make([]opt.Event, 0, accessEventBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		send(accessBatch{ev: batch})
		batch = make([]opt.Event, 0, accessEventBatch)
	}

	warmMode := warmOff
	if opts.WarmupBlocks > 0 {
		warmMode = warmBuffer
		if n, ok := blockseq.LenHint(a.src); ok {
			// blockseq.Counter hints are exact, so the boundary outcome
			// is known up front and no buffering is ever needed.
			if n > opts.WarmupBlocks {
				warmMode = warmDiscard
			} else {
				warmMode = warmOff
			}
		}
	}
	var warm []opt.Event

	opts.RecordStream = false
	opts.onEvent = func(e opt.Event) {
		if aborted {
			return
		}
		switch warmMode {
		case warmDiscard:
			return
		case warmBuffer:
			warm = append(warm, e)
			return
		}
		batch = append(batch, e)
		if len(batch) >= accessEventBatch {
			flush()
		}
	}
	opts.onWarmupEnd = func() {
		warmMode = warmOff
		warm = nil
	}

	_, err = Run(a.p, a.prog, a.src, opts)
	if err == nil && warmMode == warmBuffer {
		// The trace ended inside the warmup window: nothing was
		// truncated, so the buffered prefix is the whole stream.
		for _, e := range warm {
			batch = append(batch, e)
			if len(batch) >= accessEventBatch {
				flush()
			}
		}
	}
	flush()
	send(accessBatch{err: err, last: true})
}

type accessSeq struct {
	ch   chan accessBatch
	quit chan struct{}
	stop sync.Once

	cur  accessBatch
	i    int
	err  error
	done bool
}

func (q *accessSeq) Next() (opt.Event, bool) {
	for {
		if q.i < len(q.cur.ev) {
			e := q.cur.ev[q.i]
			q.i++
			return e, true
		}
		if q.done {
			return opt.Event{}, false
		}
		b, ok := <-q.ch
		if !ok {
			q.done = true
			return opt.Event{}, false
		}
		q.cur, q.i = b, 0
		if b.err != nil {
			q.err = b.err
			q.done = true
			return opt.Event{}, false
		}
		if b.last {
			q.done = true
		}
	}
}

func (q *accessSeq) Err() error { return q.err }

// Stop implements opt.EventStopper: it releases the producing goroutine
// of an abandoned pass (the underlying simulation still runs to
// completion, discarding its output, but nothing blocks).
func (q *accessSeq) Stop() {
	q.stop.Do(func() { close(q.quit) })
}
