package frontend

import (
	"testing"

	"ripple/internal/blockseq"
	"ripple/internal/cache"
	"ripple/internal/isa"
	"ripple/internal/prefetch"
	"ripple/internal/program"
	"ripple/internal/replacement"
	"ripple/internal/workload"
)

// prefetchNLP builds a degree-1 next-line prefetcher for tests.
func prefetchNLP(prog *program.Program) prefetch.Prefetcher {
	return prefetch.NewNLP(prog, 1)
}

// smallParams shrinks the L1I to a 2-way, 2-set cache so evictions are
// easy to force, with a deterministic penalty model.
func smallParams() Params {
	p := DefaultParams()
	p.L1I = cache.Config{SizeBytes: 256, Ways: 2, LineBytes: 64}
	p.BaseCPI = 1
	p.HintCPI = 0
	return p
}

// loopProgram builds one function: blocks b0..b3 of one line each,
// b3 jumps back to b0 via the walker-free trace we construct by hand.
func loopProgram(t *testing.T) *program.Program {
	t.Helper()
	bd := program.NewBuilder("loop")
	bd.StartFunc("f", false)
	var ids []program.BlockID
	for i := 0; i < 5; i++ {
		term := isa.TermJump
		if i == 4 {
			term = isa.TermRet
		}
		ids = append(ids, bd.AddBlock(64, term))
	}
	for i := 0; i < 4; i++ {
		bd.SetJump(ids[i], ids[i+1])
	}
	p, err := bd.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func trace(blocks ...program.BlockID) blockseq.SliceSource { return blockseq.Of(blocks...) }

func TestCycleAccountingExact(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	// Two distinct blocks, each 64B = 16 instructions, both cold-miss
	// and hit L2 (hierarchy prewarmed): cycles = 32*1 + 2*12.
	res, err := Run(p, prog, trace(0, 1), Options{Policy: replacement.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != 32 {
		t.Fatalf("Instrs = %d", res.Instrs)
	}
	if res.L1I.DemandMisses != 2 || res.L2Hits != 2 {
		t.Fatalf("misses=%d l2=%d", res.L1I.DemandMisses, res.L2Hits)
	}
	want := uint64(32 + 2*12)
	if res.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, want)
	}
	if got := res.IPC(); got != 32.0/float64(want) {
		t.Fatalf("IPC = %v", got)
	}
}

func TestColdHierarchyChargesMemory(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	res, err := Run(p, prog, trace(0), Options{Policy: replacement.NewLRU(), ColdHierarchy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemFills != 1 || res.L2Hits != 0 {
		t.Fatalf("cold hierarchy: mem=%d l2=%d", res.MemFills, res.L2Hits)
	}
	if res.Cycles != 16+260 {
		t.Fatalf("Cycles = %d", res.Cycles)
	}
}

func TestWithinLineCoalescing(t *testing.T) {
	p := smallParams()
	// One block accessed twice in a row: second execution stays within
	// the same line and coalesces (no second probe), so DemandAccesses
	// is 1 for the pair.
	prog := loopProgram(t)
	res, err := Run(p, prog, trace(0, 0), Options{Policy: replacement.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	if res.L1I.DemandAccesses != 1 {
		t.Fatalf("DemandAccesses = %d, want 1 (coalesced)", res.L1I.DemandAccesses)
	}
}

func TestDemandLinesMatchesSimulator(t *testing.T) {
	app, err := workload.Build(workload.Model{
		Name: "fe-tiny", Seed: 3,
		Funcs: 30, ServiceFuncs: 3, UtilityFuncs: 3, Levels: 3,
		BlocksMin: 3, BlocksMax: 6, BlockBytesMin: 16, BlockBytesMax: 96,
		PCond: 0.3, PCall: 0.2, PICall: 0.05, PIJump: 0.02,
		PLoopBack: 0.1, PBiasStrong: 0.8,
		CalleeMin: 1, CalleeMax: 2, IndirectFanout: 2,
		ZipfRequest: 0.9, RequestsPerBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := app.Trace(0, 5000)
	lines, blockOf, err := DemandLines(app.Prog, blockseq.SliceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(blockOf) {
		t.Fatal("lines/blockOf length mismatch")
	}
	res, err := Run(DefaultParams(), app.Prog, blockseq.SliceSource(tr), Options{Policy: replacement.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(lines)) != res.L1I.DemandAccesses {
		t.Fatalf("DemandLines has %d accesses, simulator issued %d", len(lines), res.L1I.DemandAccesses)
	}
	// blockOf indexes are monotonically nondecreasing and in range.
	for i := 1; i < len(blockOf); i++ {
		if blockOf[i] < blockOf[i-1] || int(blockOf[i]) >= len(tr) {
			t.Fatalf("blockOf[%d] = %d invalid", i, blockOf[i])
		}
	}
	// No two consecutive identical lines (coalescing invariant).
	for i := 1; i < len(lines); i++ {
		if lines[i] == lines[i-1] {
			t.Fatalf("consecutive duplicate line at %d", i)
		}
	}
}

func TestHintInvalidateForcesEviction(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	victim := prog.Block(0).FirstLine()
	// Inject into block 1 an invalidation of block 0's line.
	inj := prog.WithInjections(map[program.BlockID][]uint64{1: {victim}})
	// Trace: 0 (fill), 1 (fetch + invalidate 0), 0 again (must re-miss).
	res, err := Run(p, inj, trace(0, 1, 0), Options{Policy: replacement.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	if res.HintInstrs != 1 {
		t.Fatalf("HintInstrs = %d", res.HintInstrs)
	}
	if res.L1I.HintInvalidations != 1 {
		t.Fatalf("HintInvalidations = %d", res.L1I.HintInvalidations)
	}
	// Block 0 misses twice: cold + after invalidation.
	// (Note the injected block 1 may span an extra line due to the hint.)
	wantMisses := res.L1I.DemandMisses
	if wantMisses < 3 {
		t.Fatalf("DemandMisses = %d, want at least 3 (0 cold, 1 cold, 0 again)", wantMisses)
	}
	// The refill after invalidation is attributed to Ripple.
	if res.L1I.HintFreedFills != 1 {
		t.Fatalf("HintFreedFills = %d", res.L1I.HintFreedFills)
	}
	if res.Coverage() == 0 {
		t.Fatal("coverage = 0 despite a hint-freed fill")
	}
}

func TestHintDemoteKeepsLineUntilEviction(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	victim := prog.Block(0).FirstLine()
	inj := prog.WithInjections(map[program.BlockID][]uint64{1: {victim}})
	// 0 fill, 1 fetch+demote(0), 0 again: the line is still resident
	// under demote, so the third access HITS.
	res, err := Run(p, inj, trace(0, 1, 0), Options{Policy: replacement.NewLRU(), Hints: HintDemote})
	if err != nil {
		t.Fatal(err)
	}
	if res.L1I.Demotions != 1 {
		t.Fatalf("Demotions = %d", res.L1I.Demotions)
	}
	// Cold misses: block 0's line, plus block 1's two lines (the injected
	// hint pushes it over a line boundary). The re-access of block 0 must
	// HIT: demote keeps the line resident, unlike invalidate.
	if res.L1I.DemandMisses != 3 {
		t.Fatalf("DemandMisses = %d, want 3 cold misses", res.L1I.DemandMisses)
	}
	if hits := res.L1I.DemandAccesses - res.L1I.DemandMisses; hits != 1 {
		t.Fatalf("demoted line re-access did not hit (hits=%d)", hits)
	}
}

func TestWarmupExcludesCounters(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	tr := trace(0, 1, 2, 3, 0, 1, 2, 3)
	full, err := Run(p, prog, tr, Options{Policy: replacement.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(p, prog, tr, Options{Policy: replacement.NewLRU(), WarmupBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Blocks != 4 || warm.Instrs != full.Instrs/2 {
		t.Fatalf("post-warmup blocks=%d instrs=%d", warm.Blocks, warm.Instrs)
	}
	if warm.Cycles >= full.Cycles {
		t.Fatal("warmup did not reduce measured cycles")
	}
	if warm.L1I.DemandAccesses != 4 {
		t.Fatalf("post-warmup demand accesses = %d", warm.L1I.DemandAccesses)
	}
}

func TestRecordStreamMatchesAccesses(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	tr := trace(0, 1, 2, 0, 1)
	res, err := Run(p, prog, tr, Options{Policy: replacement.NewLRU(), RecordStream: true})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.Stream)) != res.L1I.DemandAccesses {
		t.Fatalf("stream %d events, %d demand accesses", len(res.Stream), res.L1I.DemandAccesses)
	}
	for _, e := range res.Stream {
		if e.Prefetch {
			t.Fatal("prefetch event without a prefetcher")
		}
	}
}

func TestDeterminism(t *testing.T) {
	app, _ := workload.Build(workload.Model{
		Name: "det", Seed: 8,
		Funcs: 25, ServiceFuncs: 3, UtilityFuncs: 2, Levels: 3,
		BlocksMin: 3, BlocksMax: 6, BlockBytesMin: 16, BlockBytesMax: 64,
		PCond: 0.3, PCall: 0.2, PICall: 0.05, PIJump: 0.02,
		PLoopBack: 0.1, PBiasStrong: 0.8,
		CalleeMin: 1, CalleeMax: 2, IndirectFanout: 2,
		ZipfRequest: 0.9, RequestsPerBurst: 1,
	})
	tr := blockseq.SliceSource(app.Trace(0, 3000))
	run := func() Result {
		pol, _ := replacement.New("random")
		r, err := Run(DefaultParams(), app.Prog, tr, Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.L1I.DemandMisses != b.L1I.DemandMisses {
		t.Fatal("identical runs diverged (random policy must be seeded deterministically)")
	}
}

func TestSpeedupAndIdealCycles(t *testing.T) {
	base := Result{Cycles: 1100, Instrs: 1000}
	faster := Result{Cycles: 1000, Instrs: 1000}
	if got := Speedup(base, faster); got < 9.99 || got > 10.01 {
		t.Fatalf("Speedup = %v, want 10", got)
	}
	p := DefaultParams()
	if IdealCycles(p, 1000) != uint64(1000*p.BaseCPI) {
		t.Fatal("IdealCycles wrong")
	}
}

func TestAccuracyMetricsOnScriptedRun(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	// Five one-line blocks in a 2-way single... 2-set cache: blocks 0,2,4
	// collide in one set (lines 0,2,4 -> set 0), blocks 1,3 in the other.
	tr := trace(0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0)
	res, err := Run(p, prog, tr, Options{Policy: replacement.NewLRU(), MeasureAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyEvictions == 0 {
		t.Fatal("no evictions scored in a thrashing trace")
	}
	if res.PolicyOptimal > res.PolicyEvictions {
		t.Fatal("optimal count exceeds eviction count")
	}
}

// TestLatePrefetchAccounting hand-computes the in-flight prefetch model:
// an NLP prefetch issued one block ahead has not arrived when the demand
// lands (8 base cycles < 12-cycle L2 fill), so the access counts as a late
// miss and stalls exactly for the remaining latency.
func TestLatePrefetchAccounting(t *testing.T) {
	p := smallParams()
	p.BaseCPI = 0.5 // 16-instr blocks take 8 cycles
	prog := loopProgram(t)
	nlp := prefetchNLP(prog)
	res, err := Run(p, prog, trace(3, 0, 1), Options{Policy: replacement.NewLRU(), Prefetcher: nlp})
	if err != nil {
		t.Fatal(err)
	}
	// b3 cold (12) -> 20 after base; b0 cold (12) -> 40 after base; NLP's
	// line-1 prefetch issued at 32 is ready at 44, demand arrives at 40:
	// late by 4; final base 8 -> 52.
	if res.LateMisses != 1 {
		t.Fatalf("LateMisses = %d, want 1", res.LateMisses)
	}
	if res.Cycles != 52 {
		t.Fatalf("Cycles = %d, want 52", res.Cycles)
	}
	if res.L1I.DemandMisses != 2 {
		t.Fatalf("DemandMisses = %d, want 2 (late prefetch is a tag hit)", res.L1I.DemandMisses)
	}
	// MPKI counts the late access as a miss.
	wantMPKI := float64(3) / float64(res.Instrs) * 1000
	if d := res.MPKI() - wantMPKI; d > 1e-9 || d < -1e-9 {
		t.Fatalf("MPKI = %v, want %v", res.MPKI(), wantMPKI)
	}
}

// TestTIFSMissFeedback wires the temporal prefetcher into the frontend
// and checks that the second traversal of a repeating miss sequence gets
// covered by replayed prefetches.
func TestTIFSMissFeedback(t *testing.T) {
	p := smallParams()
	prog := loopProgram(t)
	// Thrash the 2-way sets with a 5-line loop so every access misses
	// under LRU; TIFS should learn the miss stream on lap one and prefetch
	// it on later laps.
	var tr blockseq.SliceSource
	for lap := 0; lap < 6; lap++ {
		tr = append(tr, 0, 1, 2, 3, 4)
	}
	tifs := prefetch.NewTIFS(prog, 256, 4)
	res, err := Run(p, prog, tr, Options{Policy: replacement.NewLRU(), Prefetcher: tifs})
	if err != nil {
		t.Fatal(err)
	}
	if tifs.Replays == 0 || tifs.Issued == 0 {
		t.Fatalf("TIFS never replayed: %+v", tifs)
	}
	// Prefetch fills must appear in the cache stats.
	if res.L1I.PrefetchFills == 0 {
		t.Fatal("no prefetch fills recorded")
	}
}

func TestFDIPIntegrationReportsBranchMPKI(t *testing.T) {
	app, _ := workload.Build(workload.Model{
		Name: "fdip-int", Seed: 12,
		Funcs: 40, ServiceFuncs: 4, UtilityFuncs: 4, Levels: 4,
		BlocksMin: 3, BlocksMax: 7, BlockBytesMin: 16, BlockBytesMax: 64,
		PCond: 0.3, PCall: 0.25, PICall: 0.05, PIJump: 0.03,
		PLoopBack: 0.1, PBiasStrong: 0.7,
		CalleeMin: 1, CalleeMax: 3, IndirectFanout: 3,
		ZipfRequest: 1.0, RequestsPerBurst: 2,
	})
	tr := blockseq.SliceSource(app.Trace(0, 20_000))
	pf, err := prefetch.New("fdip", app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultParams(), app.Prog, tr, Options{Policy: replacement.NewLRU(), Prefetcher: pf})
	if err != nil {
		t.Fatal(err)
	}
	if res.BranchMPKI <= 0 {
		t.Fatal("FDIP run reported no branch mispredictions")
	}
	if res.L1I.PrefetchFills == 0 {
		t.Fatal("FDIP issued no prefetch fills")
	}
}

func TestPrefetchReducesStallsNotJustMisses(t *testing.T) {
	app, _ := workload.Build(workload.Model{
		Name: "pf-cmp", Seed: 13,
		Funcs: 120, ServiceFuncs: 8, UtilityFuncs: 6, Levels: 5,
		BlocksMin: 4, BlocksMax: 9, BlockBytesMin: 24, BlockBytesMax: 80,
		PCond: 0.3, PCall: 0.28, PICall: 0.04, PIJump: 0.02,
		PLoopBack: 0.1, PBiasStrong: 0.85,
		CalleeMin: 2, CalleeMax: 4, IndirectFanout: 3,
		ZipfRequest: 0.9, RequestsPerBurst: 2,
	})
	tr := blockseq.SliceSource(app.Trace(0, 60_000))
	params := DefaultParams()
	run := func(pfName string) Result {
		pf, err := prefetch.New(pfName, app.Prog)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(params, app.Prog, tr, Options{Policy: replacement.NewLRU(), Prefetcher: pf, WarmupBlocks: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run("none")
	if base.MPKI() < 1 {
		t.Skip("workload too cache-friendly for the comparison")
	}
	for _, name := range []string{"nlp", "fdip", "tifs"} {
		r := run(name)
		if r.StallCycles >= base.StallCycles {
			t.Fatalf("%s did not reduce stall cycles: %d vs %d", name, r.StallCycles, base.StallCycles)
		}
		if r.Cycles >= base.Cycles {
			t.Fatalf("%s did not speed up the run", name)
		}
	}
}

func TestRunDefaultsNilPolicyAndPrefetcher(t *testing.T) {
	prog := loopProgram(t)
	res, err := Run(smallParams(), prog, trace(0, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "lru" || res.Prefetcher != "none" {
		t.Fatalf("defaults = %s/%s", res.Policy, res.Prefetcher)
	}
}

func TestRunRejectsBadGeometry(t *testing.T) {
	prog := loopProgram(t)
	p := smallParams()
	p.L1I.SizeBytes = 100
	if _, err := Run(p, prog, trace(0), Options{}); err == nil {
		t.Fatal("invalid L1I geometry accepted")
	}
}
