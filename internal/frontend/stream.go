package frontend

import (
	"ripple/internal/blockseq"
	"ripple/internal/program"
)

// DemandLines expands a basic-block stream into the exact demand
// instruction-line access sequence the simulator issues: each executed
// block touches its laid-out lines in order, and consecutive accesses to
// the same line are coalesced (sequential fetch stays within a line
// without re-probing the cache).
//
// blockOf[i] is the stream index of the block that produced stream
// position i, which is how Ripple's eviction analysis maps oracle eviction
// events back onto basic blocks. Every consumer that needs positions
// consistent with the simulator (the accuracy oracle, the eviction
// analysis) must use this function.
//
// The output is inherently O(stream length): the oracles this feeds need
// the whole access sequence with future knowledge. The input, however, is
// consumed one block at a time.
func DemandLines(prog *program.Program, src blockseq.Source) (lines []uint64, blockOf []int32, err error) {
	return DemandLinesSeq(prog, src.Open(), blockseq.CapHint(src, 0))
}

// DemandLinesSeq is DemandLines over an already-open pass, so a consumer
// holding one branch of a shared decode (blockseq.Tee) can expand it
// without re-opening the source. blocksHint, when positive, pre-sizes
// the output for a stream of that many blocks.
func DemandLinesSeq(prog *program.Program, seq blockseq.Seq, blocksHint int) (lines []uint64, blockOf []int32, err error) {
	capHint := 1024
	if blocksHint > 0 {
		// Clamp: a caller's hint may descend from an unvalidated trace
		// header, which must not drive the allocation.
		capHint = min(blocksHint, 1<<20) * 3 / 2
	}
	lines = make([]uint64, 0, capHint)
	blockOf = make([]int32, 0, capHint)
	var buf [16]uint64
	last := ^uint64(0)
	for ti := int32(0); ; ti++ {
		bid, ok := seq.Next()
		if !ok {
			return lines, blockOf, seq.Err()
		}
		for _, l := range prog.Block(bid).Lines(buf[:0]) {
			if l == last {
				continue
			}
			last = l
			lines = append(lines, l)
			blockOf = append(blockOf, ti)
		}
	}
}
