package frontend

import (
	"ripple/internal/program"
)

// DemandLines expands a basic-block trace into the exact demand
// instruction-line access sequence the simulator issues: each executed
// block touches its laid-out lines in order, and consecutive accesses to
// the same line are coalesced (sequential fetch stays within a line
// without re-probing the cache).
//
// blockOf[i] is the trace index of the block that produced stream position
// i, which is how Ripple's eviction analysis maps oracle eviction events
// back onto basic blocks. Every consumer that needs positions consistent
// with the simulator (the accuracy oracle, the eviction analysis) must use
// this function.
func DemandLines(prog *program.Program, trace []program.BlockID) (lines []uint64, blockOf []int32) {
	lines = make([]uint64, 0, len(trace)*3/2)
	blockOf = make([]int32, 0, len(trace)*3/2)
	var buf [16]uint64
	last := ^uint64(0)
	for ti, bid := range trace {
		bl := prog.Block(bid).Lines(buf[:0])
		for _, l := range bl {
			if l == last {
				continue
			}
			last = l
			lines = append(lines, l)
			blockOf = append(blockOf, int32(ti))
		}
	}
	return lines, blockOf
}
