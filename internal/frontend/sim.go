package frontend

import (
	"fmt"

	"ripple/internal/blockseq"
	"ripple/internal/cache"
	"ripple/internal/opt"
	"ripple/internal/prefetch"
	"ripple/internal/program"
	"ripple/internal/replacement"
)

// HintMode selects how injected Ripple hints are executed.
type HintMode int

const (
	// HintInvalidate drops the victim line from the L1I (the proposed
	// `invalidate` instruction, cldemote-like).
	HintInvalidate HintMode = iota
	// HintDemote moves the victim to the most-replaceable position
	// instead (Sec. IV, "invalidation vs. reducing LRU priority").
	HintDemote
)

// Options configures one simulation run.
type Options struct {
	// Policy is the L1I replacement policy instance (fresh per run).
	Policy cache.Policy
	// Prefetcher drives instruction prefetching (fresh per run).
	Prefetcher prefetch.Prefetcher
	// Hints selects invalidate vs. demote execution of injected hints.
	Hints HintMode
	// RecordStream materializes the full demand+prefetch line-event
	// stream on Result.Stream — 16 bytes per post-warmup access, i.e.
	// O(trace) memory. It is a legacy opt-in for callers that genuinely
	// need the slice; every oracle consumer should instead replay the
	// run through AccessEvents, which streams the identical events
	// without materializing them.
	RecordStream bool
	// MeasureAccuracy scores every replacement decision against the
	// Belady next-use oracle (costs one pass over the trace up front).
	MeasureAccuracy bool
	// WarmupBlocks executes the first N trace blocks to warm the caches
	// and predictors but excludes them from every reported statistic —
	// the steady-state methodology of the paper's trace collection. A
	// warmup at least as long as the trace is ignored (full-trace stats).
	WarmupBlocks int
	// ColdHierarchy starts the L2/L3 empty. By default the program text is
	// pre-installed in the outer levels (10 MiB of L3 holds any of these
	// binaries), modeling the steady-state server the paper traces: after
	// hours of uptime every text line has long been resident beyond L1,
	// and charging one-time 260-cycle compulsory fills against a short
	// simulation window would distort every comparison.
	ColdHierarchy bool

	// onEvent, when set, observes every demand/prefetch event as it is
	// issued (warmup included; AccessEvents resolves the boundary via
	// onWarmupEnd). Unexported: only AccessEvents wires these hooks.
	onEvent func(opt.Event)
	// onWarmupEnd fires once when the warmup boundary is crossed.
	onWarmupEnd func()
}

// Result is everything one run measures.
type Result struct {
	Program    string
	Policy     string
	Prefetcher string

	Blocks      uint64 // committed basic blocks
	Instrs      uint64 // dynamic instructions, including injected hints
	HintInstrs  uint64 // dynamic injected hint instructions
	Cycles      uint64
	StallCycles uint64
	// LateMisses counts demand accesses that found their line still in
	// flight from a prefetch: the data had not arrived, so they stall for
	// the remaining latency and count as misses (MSHR hits in hardware).
	LateMisses uint64

	L1I cache.Stats
	// Compulsory counts first-touch demand misses (cold lines).
	Compulsory uint64
	// L2Hits/L3Hits/MemFills break down where demand L1I misses were
	// served.
	L2Hits, L3Hits, MemFills uint64

	// Accuracy accounting (MeasureAccuracy only): policy-made eviction
	// decisions and Ripple hint decisions scored against Belady.
	PolicyEvictions uint64
	PolicyOptimal   uint64
	HintEvictions   uint64
	HintOptimal     uint64

	// Stream is the recorded access stream (RecordStream only).
	Stream []opt.Event

	// BranchMPKI is control-flow mispredictions per kilo-instruction
	// (FDIP runs only; 0 otherwise).
	BranchMPKI float64
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// MPKI returns L1I demand misses per kilo-instruction. Late prefetches
// (line still in flight when demanded) count as misses, as in hardware.
func (r Result) MPKI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.L1I.DemandMisses+r.LateMisses) / float64(r.Instrs) * 1000
}

// Coverage returns the fraction of replacement decisions initiated by
// Ripple hints.
func (r Result) Coverage() float64 { return r.L1I.Coverage() }

// HintAccuracy returns the fraction of effective Ripple hints whose victim
// was a Belady-consistent choice (Fig. 10).
func (r Result) HintAccuracy() float64 {
	if r.HintEvictions == 0 {
		return 0
	}
	return float64(r.HintOptimal) / float64(r.HintEvictions)
}

// PolicyAccuracy returns the Belady-consistency of the underlying
// policy's own victim choices (the paper reports 77.8% for LRU).
func (r Result) PolicyAccuracy() float64 {
	if r.PolicyEvictions == 0 {
		return 0
	}
	return float64(r.PolicyOptimal) / float64(r.PolicyEvictions)
}

// CombinedAccuracy returns the accuracy over all replacement decisions
// (Ripple hints + policy evictions), the paper's "overall" number.
func (r Result) CombinedAccuracy() float64 {
	tot := r.HintEvictions + r.PolicyEvictions
	if tot == 0 {
		return 0
	}
	return float64(r.HintOptimal+r.PolicyOptimal) / float64(tot)
}

// IdealCycles returns the cycle count of the same run with a perfect
// I-cache (no instruction-miss stalls) — the Fig. 1 limit.
func IdealCycles(p Params, instrs uint64) uint64 {
	return uint64(float64(instrs) * p.BaseCPI)
}

// Speedup returns the percentage speedup of r over a baseline run.
func Speedup(baseline, r Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return (float64(baseline.Cycles)/float64(r.Cycles) - 1) * 100
}

// sim bundles one run's mutable state.
type sim struct {
	p      Params
	prog   *program.Program
	opts   Options
	l1i    *cache.Cache
	l2     *cache.Cache
	l3     *cache.Cache
	res    *Result
	oracle *opt.Oracle
	pos    int32 // current demand-stream position (oracle time)
	seen   map[uint64]bool

	// cycleF is the running cycle clock; prefetch timeliness is judged
	// against it.
	cycleF float64
	// pending maps an in-flight prefetched line to the cycle its data
	// arrives. A demand access before that cycle is a late prefetch: it
	// stalls for the remainder and counts as a miss.
	pending map[uint64]float64
	// missObs is the prefetcher's miss-feedback hook, if it has one
	// (temporal record/replay designs train on the miss stream).
	missObs prefetch.MissObserver
	// warmSnap holds the counter snapshot taken at the end of warmup.
	warmSnap *Result
}

// Run simulates the block stream through the configured frontend and
// returns the measurements. The source may be replayed with a rewritten
// (injected) program: block IDs are stable across injection. Run holds
// O(1) state beyond the caches: a streaming source (workload walker, PT
// decoder) is consumed without ever materializing the trace.
// MeasureAccuracy re-opens the source for the oracle pre-pass, relying on
// the Source replayability contract.
func Run(p Params, prog *program.Program, src blockseq.Source, opts Options) (Result, error) {
	if opts.Policy == nil {
		opts.Policy = replacement.NewLRU()
	}
	if opts.Prefetcher == nil {
		opts.Prefetcher = prefetch.None{}
	}
	l1i, err := cache.New(p.L1I, opts.Policy)
	if err != nil {
		return Result{}, fmt.Errorf("frontend: L1I: %w", err)
	}
	l2, err := cache.New(p.L2, replacement.NewLRU())
	if err != nil {
		return Result{}, fmt.Errorf("frontend: L2: %w", err)
	}
	l3, err := cache.New(p.L3, replacement.NewLRU())
	if err != nil {
		return Result{}, fmt.Errorf("frontend: L3: %w", err)
	}
	res := Result{
		Program:    prog.Name,
		Policy:     opts.Policy.Name(),
		Prefetcher: opts.Prefetcher.Name(),
	}
	s := &sim{
		p: p, prog: prog, opts: opts,
		l1i: l1i, l2: l2, l3: l3,
		res:     &res,
		seen:    make(map[uint64]bool, 1<<14),
		pending: make(map[uint64]float64, 1<<10),
	}
	if mo, ok := opts.Prefetcher.(prefetch.MissObserver); ok {
		s.missObs = mo
	}
	if opts.MeasureAccuracy {
		o, err := opt.BuildOracleSource(DemandEvents(prog, src), p.L1I)
		if err != nil {
			return Result{}, fmt.Errorf("frontend: oracle pre-pass: %w", err)
		}
		s.oracle = o
	}
	if !opts.ColdHierarchy {
		s.prewarm()
	}
	if opts.RecordStream {
		res.Stream = make([]opt.Event, 0, blockseq.CapHint(src, 512)*2)
	}

	if err := s.run(src); err != nil {
		return Result{}, fmt.Errorf("frontend: %w", err)
	}

	res.Cycles = uint64(s.cycleF)
	res.L1I = s.l1i.Stats
	res.subtract(s.warmSnap)
	if f, ok := opts.Prefetcher.(*prefetch.FDIP); ok && res.Instrs > 0 {
		pr := f.Predictor()
		mis := pr.CondMispredicts + pr.IndMispredicts + pr.RetMispredicts
		res.BranchMPKI = float64(mis) / float64(res.Instrs) * 1000
	}
	return res, nil
}

func (s *sim) run(src blockseq.Source) error {
	var lineBuf [16]uint64
	lastLine := ^uint64(0)
	issue := s.issuePrefetch

	// One-block lookahead: the prefetcher's retire hook needs the next
	// block, so the loop always holds the current block plus the peeked
	// successor — the only trace state the simulator keeps.
	seq := src.Open()
	bid, ok := seq.Next()
	for ti := 0; ok; ti++ {
		next, haveNext := seq.Next()
		if ti == s.opts.WarmupBlocks {
			s.snapshotWarm()
		}
		b := s.prog.Block(bid)
		s.res.Blocks++
		s.res.Instrs += uint64(b.InstrCount())

		// Fetch the block's lines (coalescing within-line continuation,
		// matching DemandLines).
		for _, l := range b.Lines(lineBuf[:0]) {
			if l == lastLine {
				continue
			}
			lastLine = l
			s.demandAccess(l)
			s.pos++
		}

		// Execute injected hints (they retire within the block).
		if n := len(b.Invalidations); n > 0 {
			s.res.HintInstrs += uint64(n)
			for _, victim := range b.Invalidations {
				s.executeHint(victim)
			}
		}

		// Let the prefetcher observe retirement and run ahead.
		if haveNext {
			s.opts.Prefetcher.OnBlockRetire(bid, next, issue)
		}

		// Advance the pipeline clock by the block's base execution time;
		// injected hints are near-free µops charged at HintCPI.
		nh := len(b.Invalidations)
		s.cycleF += float64(b.Instrs)*s.p.BaseCPI + float64(nh)*s.p.HintCPI

		bid, ok = next, haveNext
	}
	return seq.Err()
}

// snapshotWarm records every counter at the end of warmup so the final
// result reports steady-state deltas only.
func (s *sim) snapshotWarm() {
	snap := *s.res
	snap.Cycles = uint64(s.cycleF)
	snap.L1I = s.l1i.Stats
	snap.Stream = nil
	s.warmSnap = &snap
	if s.opts.RecordStream {
		// The oracle replays only the measured region.
		s.res.Stream = s.res.Stream[:0]
	}
	if s.opts.onWarmupEnd != nil {
		s.opts.onWarmupEnd()
	}
}

// subtract removes the warmup-era counts from the result.
func (r *Result) subtract(w *Result) {
	if w == nil {
		return
	}
	r.Blocks -= w.Blocks
	r.Instrs -= w.Instrs
	r.HintInstrs -= w.HintInstrs
	r.Cycles -= w.Cycles
	r.StallCycles -= w.StallCycles
	r.LateMisses -= w.LateMisses
	r.Compulsory -= w.Compulsory
	r.L2Hits -= w.L2Hits
	r.L3Hits -= w.L3Hits
	r.MemFills -= w.MemFills
	r.PolicyEvictions -= w.PolicyEvictions
	r.PolicyOptimal -= w.PolicyOptimal
	r.HintEvictions -= w.HintEvictions
	r.HintOptimal -= w.HintOptimal
	r.L1I = cache.Sub(r.L1I, w.L1I)
}

// prewarm installs the whole text image into L2 and L3.
func (s *sim) prewarm() {
	var buf [16]uint64
	for i := range s.prog.Blocks {
		for _, l := range s.prog.Blocks[i].Lines(buf[:0]) {
			ai := cache.AccessInfo{Line: l, Sig: l}
			s.l2.Access(ai)
			s.l3.Access(ai)
		}
	}
}

// stall charges exposed miss latency: the clock advances and the stall is
// accounted.
func (s *sim) stall(cycles float64) {
	s.cycleF += cycles
	s.res.StallCycles += uint64(cycles)
}

// demandAccess performs one demand instruction-line access, charging the
// exposed miss latency.
func (s *sim) demandAccess(l uint64) {
	if s.opts.RecordStream {
		s.res.Stream = append(s.res.Stream, opt.Event{Line: l})
	}
	if s.opts.onEvent != nil {
		s.opts.onEvent(opt.Event{Line: l})
	}
	ai := cache.AccessInfo{Line: l, Sig: l}
	r := s.l1i.Access(ai)
	if r.EvictedValid {
		delete(s.pending, r.Evicted)
		if s.oracle != nil {
			s.scoreEviction(r, l, s.pos)
		}
	}
	if r.Hit {
		if ready, ok := s.pending[l]; ok {
			delete(s.pending, l)
			if ready > s.cycleF {
				// Late prefetch: the line is allocated but its data is
				// still in flight.
				s.res.LateMisses++
				s.stall(ready - s.cycleF)
			}
		}
		return
	}
	if !s.seen[l] {
		s.seen[l] = true
		s.res.Compulsory++
	}
	// Serve the miss from the hierarchy, fully exposed.
	switch {
	case s.l2.Access(ai).Hit:
		s.res.L2Hits++
		s.stall(float64(s.p.L2Lat))
	case s.l3.Access(ai).Hit:
		s.res.L3Hits++
		s.stall(float64(s.p.L3Lat))
		// L2 was filled by its miss handling in Access above.
	default:
		s.res.MemFills++
		s.stall(float64(s.p.MemLat))
	}
	if s.missObs != nil {
		s.missObs.OnDemandMiss(l, s.issuePrefetch)
	}
}

// issuePrefetch installs a prefetched line into the L1I (via the
// hierarchy) off the critical path.
func (s *sim) issuePrefetch(l uint64) {
	ai := cache.AccessInfo{Line: l, Sig: l, Prefetch: true}
	r := s.l1i.Access(ai)
	if r.EvictedValid {
		delete(s.pending, r.Evicted)
		if s.oracle != nil {
			s.scoreEviction(r, l, s.pos-1)
		}
	}
	if s.opts.RecordStream {
		s.res.Stream = append(s.res.Stream, opt.Event{Line: l, Prefetch: true})
	}
	if s.opts.onEvent != nil {
		s.opts.onEvent(opt.Event{Line: l, Prefetch: true})
	}
	if !r.Hit {
		// Pull the line through L2/L3 off the critical path; the data
		// arrives after the level's latency, and a demand access before
		// then is a late prefetch.
		lat := float64(s.p.L2Lat)
		if !s.l2.Access(ai).Hit {
			lat = float64(s.p.L3Lat)
			if !s.l3.Access(ai).Hit {
				lat = float64(s.p.MemLat)
			}
		}
		s.pending[l] = s.cycleF + lat
	}
}

// executeHint runs one injected invalidate/demote for a victim line.
func (s *sim) executeHint(victim uint64) {
	var acted bool
	if s.opts.Hints == HintDemote {
		acted = s.l1i.Demote(victim)
	} else {
		acted = s.l1i.Invalidate(victim)
		if acted {
			delete(s.pending, victim)
		}
	}
	if acted && s.oracle != nil {
		s.res.HintEvictions++
		if s.oracle.IsAccurateEviction(victim, s.pos-1) {
			s.res.HintOptimal++
		}
	}
}

// scoreEviction scores an eviction decision with the paper's accuracy
// metric: did it introduce a miss the ideal policy would have avoided?
// Demote-path evictions (HintFreed) are attributed to Ripple; the rest to
// the policy.
func (s *sim) scoreEviction(r cache.AccessResult, filled uint64, pos int32) {
	_ = filled
	accurate := s.oracle.IsAccurateEviction(r.Evicted, pos)
	if r.HintFreed {
		s.res.HintEvictions++
		if accurate {
			s.res.HintOptimal++
		}
		return
	}
	s.res.PolicyEvictions++
	if accurate {
		s.res.PolicyOptimal++
	}
}
