// Command rippleprobe interrogates replacement policies as black boxes:
// it drives them through synthesized membership-query schedules (the
// software analogue of eviction-set probing) and reports what the
// transcripts reveal.
//
// Three modes:
//
//	rippleprobe -policy lru                  conformance: replay seeded
//	    schedules through the implementation and its independent
//	    reference spec, report the first divergence (if any) and the
//	    learned behavioral model. -policy all covers the whole zoo.
//
//	rippleprobe -matrix                      distinguishability: search a
//	    separating witness sequence for every required subject pair —
//	    all base-policy pairs plus each policy against its invalidate /
//	    demote hint-injected variants.
//
//	rippleprobe -witness lru+none,srrip+none show the shortest found
//	    witness for one pair: the op schedule and both transcripts up to
//	    the divergence.
//
// Output is deterministic for fixed flags: schedules are seeded, the
// witness search is exhaustive in seed order, and every table is sorted.
// -json writes the same report machine-readably.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ripple/internal/probe"
	"ripple/internal/replacement"
)

func main() {
	var o options
	flag.StringVar(&o.Policy, "policy", "", "policy to check conformance for (a catalog name, or 'all')")
	flag.StringVar(&o.Hints, "hints", "all", "hint mode(s) to probe: none, invalidate, demote, or all")
	flag.BoolVar(&o.Matrix, "matrix", false, "build the pairwise distinguishability matrix over the zoo")
	flag.StringVar(&o.Witness, "witness", "", "subject pair 'a+mode,b+mode' to search a separating witness for")
	flag.IntVar(&o.Sets, "sets", 8, "probed geometry: sets (power of two)")
	flag.IntVar(&o.Ways, "ways", 4, "probed geometry: ways")
	flag.IntVar(&o.Seqs, "seqs", 1000, "conformance: seeded schedules per hint mode")
	flag.IntVar(&o.SeqLen, "seqlen", 192, "ops per schedule (matrix/witness default 256 when unset)")
	flag.Uint64Var(&o.Seed, "seed", 0, "base seed offsetting every schedule")
	flag.IntVar(&o.WitnessSeeds, "witness-seeds", 30000, "matrix/witness: max schedules tried per pair")
	flag.StringVar(&o.JSONOut, "json", "", "also write a JSON report to this path ('-' for stdout)")
	flag.Parse()
	o.Stdout = os.Stdout
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "rippleprobe: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	Policy       string
	Hints        string
	Matrix       bool
	Witness      string
	Sets, Ways   int
	Seqs         int
	SeqLen       int
	Seed         uint64
	WitnessSeeds int
	JSONOut      string
	Stdout       io.Writer
}

// report is the JSON shape; unused sections are omitted.
type report struct {
	Sets        int                `json:"sets"`
	Ways        int                `json:"ways"`
	Conformance []conformanceEntry `json:"conformance,omitempty"`
	Matrix      []matrixEntry      `json:"matrix,omitempty"`
	Witness     *witnessDetail     `json:"witness,omitempty"`
}

type conformanceEntry struct {
	Policy   string      `json:"policy"`
	Hints    string      `json:"hints"`
	Seqs     int         `json:"seqs"`
	Conforms bool        `json:"conforms"`
	Mismatch string      `json:"mismatch,omitempty"`
	Model    probe.Model `json:"model"`
}

type matrixEntry struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Found bool   `json:"found"`
	Seed  uint64 `json:"seed,omitempty"`
	Len   int    `json:"len,omitempty"`
}

type witnessDetail struct {
	Witness probe.Witness `json:"witness"`
	Ops     []opLine      `json:"ops"`
}

type opLine struct {
	Kind string `json:"kind"`
	Line uint64 `json:"line"`
	A    string `json:"a"`
	B    string `json:"b"`
}

func run(o options) error {
	zoo := replacement.ProbeZoo()
	rep := report{Sets: o.Sets, Ways: o.Ways}
	var failed bool

	modes, err := parseModes(o.Hints)
	if err != nil {
		return err
	}

	switch {
	case o.Matrix:
		seqLen := o.SeqLen
		if seqLen == 192 { // conformance default; matrix wants longer
			seqLen = 256
		}
		results := probe.DistinguishAll(zoo, o.Sets, o.Ways,
			probe.SearchOpts{MaxSeeds: o.WitnessSeeds, SeqLen: seqLen})
		fmt.Fprintf(o.Stdout, "distinguishability matrix: %d subject pairs over %dx%d\n",
			len(results), o.Sets, o.Ways)
		for _, res := range results {
			e := matrixEntry{A: res.A, B: res.B}
			if res.Witness != nil {
				e.Found, e.Seed, e.Len = true, res.Witness.Seed, res.Witness.Len
				fmt.Fprintf(o.Stdout, "  %-22s | %-22s  seed=%-6d len=%d\n", res.A, res.B, e.Seed, e.Len)
			} else {
				failed = true
				fmt.Fprintf(o.Stdout, "  %-22s | %-22s  INDISTINGUISHABLE within %d seeds\n",
					res.A, res.B, o.WitnessSeeds)
			}
			rep.Matrix = append(rep.Matrix, e)
		}

	case o.Witness != "":
		parts := strings.Split(o.Witness, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-witness wants 'subjectA,subjectB' (e.g. lru+none,srrip+none), got %q", o.Witness)
		}
		subs := probe.Subjects(zoo)
		a, err := probe.SubjectByID(subs, strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		b, err := probe.SubjectByID(subs, strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		seqLen := o.SeqLen
		if seqLen == 192 {
			seqLen = 256
		}
		w, ok := probe.FindWitness(a, b, o.Sets, o.Ways,
			probe.SearchOpts{MaxSeeds: o.WitnessSeeds, SeqLen: seqLen})
		if !ok {
			return fmt.Errorf("no witness separates %s and %s within %d seeds", a.ID(), b.ID(), o.WitnessSeeds)
		}
		detail := describeWitness(w, a, b)
		rep.Witness = &detail
		fmt.Fprintf(o.Stdout, "witness for %s | %s: seed=%d len=%d over %dx%d\n",
			w.A, w.B, w.Seed, w.Len, w.Sets, w.Ways)
		fmt.Fprintf(o.Stdout, "  %-4s %-9s %-8s %-22s %-22s\n", "op", "kind", "line", a.ID(), b.ID())
		for i, l := range detail.Ops {
			marker := " "
			if i == len(detail.Ops)-1 {
				marker = "*" // the divergence
			}
			fmt.Fprintf(o.Stdout, "%s %-4d %-9s %-8d %-22s %-22s\n", marker, i, l.Kind, l.Line, l.A, l.B)
		}

	case o.Policy != "":
		names := []string{o.Policy}
		if o.Policy == "all" {
			names = replacement.Names()
		}
		regs := map[string]probe.Registration{}
		for _, reg := range zoo {
			regs[reg.Name] = reg
		}
		for _, name := range names {
			reg, ok := regs[name]
			if !ok {
				return fmt.Errorf("unknown policy %q (catalog: %s)", name, strings.Join(replacement.Names(), ", "))
			}
			for _, mode := range modes {
				if mode == probe.HintDemote && !reg.Demotes() {
					continue
				}
				cfg := probe.Config{Sets: o.Sets, Ways: o.Ways, Hints: mode}
				m := probe.Diff(reg.New, reg.Ref, cfg,
					probe.DiffOpts{Seqs: o.Seqs, SeqLen: o.SeqLen, Seed: o.Seed})
				e := conformanceEntry{
					Policy: name, Hints: mode.String(), Seqs: o.Seqs,
					Conforms: m == nil,
					Model:    probe.Learn(reg.Probe(), cfg),
				}
				if m != nil {
					failed = true
					e.Mismatch = m.Error()
					fmt.Fprintf(o.Stdout, "FAIL %-10s hints=%-10s %v\n", name, mode, m)
				} else {
					fmt.Fprintf(o.Stdout, "ok   %-10s hints=%-10s %d seqs  model: order=%v promote=%t scan-through=%t demote-forces=%t fp=%s\n",
						name, mode, o.Seqs, e.Model.EvictionOrder, e.Model.PromotesOnHit,
						e.Model.ScanThroughInsert, e.Model.DemoteForcesVictim, e.Model.Fingerprint)
				}
				rep.Conformance = append(rep.Conformance, e)
			}
		}

	default:
		return fmt.Errorf("pick a mode: -policy NAME|all, -matrix, or -witness A,B")
	}

	if o.JSONOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if o.JSONOut == "-" {
			if _, err := o.Stdout.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(o.JSONOut, data, 0o644); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("probe found divergences (see report)")
	}
	return nil
}

func parseModes(s string) ([]probe.HintMode, error) {
	if s == "all" || s == "" {
		return []probe.HintMode{probe.HintNone, probe.HintInvalidate, probe.HintDemote}, nil
	}
	var modes []probe.HintMode
	for _, part := range strings.Split(s, ",") {
		m, err := probe.ParseHintMode(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
	return modes, nil
}

// describeWitness replays the witness and renders both transcripts.
func describeWitness(w probe.Witness, a, b probe.Subject) witnessDetail {
	ops := probe.WitnessOps(w)
	cfgA := probe.Config{Sets: w.Sets, Ways: w.Ways, Hints: a.Hints}
	cfgB := probe.Config{Sets: w.Sets, Ways: w.Ways, Hints: b.Hints}
	ta, _ := probe.Run(a.New(), cfgA, ops)
	tb, _ := probe.Run(b.New(), cfgB, ops)
	detail := witnessDetail{Witness: w}
	for i := range ops {
		detail.Ops = append(detail.Ops, opLine{
			Kind: ops[i].Kind.String(),
			Line: ops[i].Line,
			A:    renderOutcome(ta[i]),
			B:    renderOutcome(tb[i]),
		})
	}
	return detail
}

func renderOutcome(o probe.Outcome) string {
	if o.Way < 0 {
		return "hint"
	}
	s := "miss"
	if o.Hit {
		s = "hit"
	}
	s += fmt.Sprintf(" way=%d", o.Way)
	if o.Evicted >= 0 {
		s += fmt.Sprintf(" evict=%d", o.Evicted)
	}
	return s
}
