package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runGolden executes run() with -json - (report appended to stdout) and
// compares the combined output byte-for-byte against a committed golden.
// The CLI's whole value is reproducibility — seeded schedules, seed-order
// witness search, sorted tables — so the goldens assert byte identity,
// not shape.
func runGolden(t *testing.T, name string, o options) {
	t.Helper()
	var buf bytes.Buffer
	o.Stdout = &buf
	o.JSONOut = "-"
	if err := run(o); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}

	// Determinism: a second run must be byte-identical.
	var again bytes.Buffer
	o2 := o
	o2.Stdout = &again
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two identical invocations produced different output")
	}

	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — regenerate with -update", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s — regenerate with -update if intended\ngot:\n%s", golden, buf.String())
	}
}

func TestGoldenConformance(t *testing.T) {
	runGolden(t, "conformance", options{
		Policy: "all", Hints: "all",
		Sets: 8, Ways: 4, Seqs: 100, SeqLen: 192,
	})
}

func TestGoldenMatrix(t *testing.T) {
	runGolden(t, "matrix", options{
		Matrix: true, Hints: "all",
		Sets: 8, Ways: 4, SeqLen: 192, WitnessSeeds: 30000,
	})
}

func TestGoldenWitness(t *testing.T) {
	runGolden(t, "witness", options{
		Witness: "lru+none,lru+demote", Hints: "all",
		Sets: 8, Ways: 4, SeqLen: 192, WitnessSeeds: 30000,
	})
}

func TestUnknownPolicyFails(t *testing.T) {
	var buf bytes.Buffer
	err := run(options{Policy: "bogus", Hints: "all", Sets: 8, Ways: 4, Seqs: 1, SeqLen: 16, Stdout: &buf})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestNoModeFails(t *testing.T) {
	var buf bytes.Buffer
	if err := run(options{Hints: "all", Sets: 8, Ways: 4, Stdout: &buf}); err == nil {
		t.Fatal("mode-less invocation accepted")
	}
}
