package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ripple/internal/blockseq"
	"ripple/internal/trace"
	"ripple/internal/watch"
	"ripple/internal/workload"
)

// fixture writes a small app's program image and a sync-pointed trace.
func fixture(t *testing.T) (progPath, ptPath string, blocks int) {
	t.Helper()
	app, err := workload.Build(workload.Model{
		Name: "watch-cli", Seed: 5,
		Funcs: 30, ServiceFuncs: 3, UtilityFuncs: 3, Levels: 4,
		BlocksMin: 3, BlocksMax: 7, BlockBytesMin: 16, BlockBytesMax: 64,
		PCond: 0.3, PCall: 0.25, PICall: 0.05, PIJump: 0.03,
		PLoopBack: 0.1, PBiasStrong: 0.8,
		CalleeMin: 1, CalleeMax: 3, IndirectFanout: 3,
		ZipfRequest: 1.0, RequestsPerBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	progPath = filepath.Join(dir, "app.prog")
	pf, err := os.Create(progPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Prog.Save(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	tr := app.Trace(0, 3000)
	ptPath = filepath.Join(dir, "app.pt")
	tf, err := os.Create(ptPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.EncodeSourceSync(tf, app.Prog, blockseq.SliceSource(tr), 128); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	return progPath, ptPath, len(tr)
}

// TestRunSnapshotAndResume: a non-follow run consumes the snapshot,
// publishes revisions, and a rerun resumes from the checkpoint without
// republishing.
func TestRunSnapshotAndResume(t *testing.T) {
	progPath, ptPath, blocks := fixture(t)
	out := filepath.Join(t.TempDir(), "plans")
	var buf bytes.Buffer
	o := options{
		ProgPath: progPath, PTPath: ptPath, OutDir: out,
		Window: 256, Epoch: 256, Threshold: 0.6,
		Follow: false,
		Stdout: &buf,
	}
	res, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != watch.OutcomeComplete || res.Total != uint64(blocks) || res.Revisions < 1 {
		t.Fatalf("run: %+v over %d blocks", res, blocks)
	}
	if _, err := os.Stat(watch.RevisionPath(out, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ptPath + ".ptwatch"); err != nil {
		t.Fatalf("default state sidecar: %v", err)
	}
	final := lastLine(buf.String())
	if !strings.HasPrefix(final, "final: outcome=complete") {
		t.Fatalf("final line %q", final)
	}

	buf.Reset()
	res2, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed || res2.Revisions != res.Revisions || res2.Total != res.Total {
		t.Fatalf("rerun: %+v, first run %+v", res2, res)
	}
	if !strings.Contains(lastLine(buf.String()), "resumed=true") {
		t.Fatalf("final line %q", lastLine(buf.String()))
	}
}

// TestRunCanceledBySignalChannel: closing Done (the signal path) while
// following an unfinished stream ends the run cleanly with a checkpoint.
func TestRunCanceledBySignalChannel(t *testing.T) {
	progPath, ptPath, blocks := fixture(t)
	raw, err := os.ReadFile(ptPath)
	if err != nil {
		t.Fatal(err)
	}
	// Withhold the tail so the watcher parks at the live edge.
	if err := os.WriteFile(ptPath, raw[:2*len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	o := options{
		ProgPath: progPath, PTPath: ptPath,
		OutDir: filepath.Join(t.TempDir(), "plans"),
		Window: 256, Epoch: 256, Threshold: 0.6,
		Follow: true, Poll: time.Millisecond,
		Done:   done,
		Stdout: nil, // exercises the io.Discard default
	}
	res, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != watch.OutcomeCanceled {
		t.Fatalf("outcome %s, want canceled", res.Outcome)
	}
	if res.Total == 0 || res.Total >= uint64(blocks) {
		t.Fatalf("canceled at %d of %d blocks", res.Total, blocks)
	}
	if _, err := os.Stat(ptPath + ".ptwatch"); err != nil {
		t.Fatalf("checkpoint after cancel: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if _, err := run(options{}); err == nil {
		t.Fatal("missing required flags accepted")
	}
	progPath, ptPath, _ := fixture(t)
	o := options{
		ProgPath: progPath, PTPath: ptPath,
		OutDir:    filepath.Join(t.TempDir(), "plans"),
		Threshold: 2,
	}
	if _, err := run(o); err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("threshold 2: %v", err)
	}
	// The live tail reads through ReadAt by design: a mapping is a
	// fixed-size snapshot and parallel region decode needs a complete
	// file, so both knobs are rejected up front rather than ignored.
	o.Threshold = 0
	o.Mmap = true
	if _, err := run(o); err == nil || !strings.Contains(err.Error(), "mmap") {
		t.Fatalf("-mmap while tailing: %v", err)
	}
	o.Mmap = false
	o.Decoders = 4
	if _, err := run(o); err == nil || !strings.Contains(err.Error(), "decoders") {
		t.Fatalf("-decoders while tailing: %v", err)
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}
