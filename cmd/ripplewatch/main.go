// Command ripplewatch is the continuous-profiling half of Ripple: it
// tails a growing PT trace, re-analyzes a rolling window of recent
// blocks each epoch, and publishes versioned injection-plan revisions
// with hysteresis, checkpointing its position so a crashed or restarted
// watcher resumes without re-decoding the prefix.
//
// Usage:
//
//	ripplewatch -prog /tmp/fh.prog -pt /tmp/fh.pt -out /tmp/plans
//
// The watcher follows the trace file like tail -f: clean truncation at
// the live edge is "wait for the writer", mid-stream corruption
// resynchronizes at the next sync point and is accounted in every
// revision's coverage block. A checkpoint sidecar (-state, default
// <pt>.ptwatch) binds the consumed prefix by content hash; restarting
// against the same stream resumes and publishes the identical revision
// tail, byte for byte. SIGINT/SIGTERM stop the tail, flush a final
// checkpoint, and exit 0. A rotated trace (fresh inode under the same
// path) restarts the watcher fresh against the new stream.
//
// Revisions land in -out as plan-NNNNN.json; each carries the plan
// digest, predicted speedup, and the coverage accounting for the window
// it was derived from. With -store the epoch simulations share a
// rippled fleet store; a dead store degrades to local compute through
// the client's breaker rather than stopping publication.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ripple/internal/program"
	"ripple/internal/rippled"
	"ripple/internal/runner"
	"ripple/internal/watch"
)

func main() {
	var o options
	flag.StringVar(&o.ProgPath, "prog", "", "program image from ripplegen (required)")
	flag.StringVar(&o.PTPath, "pt", "", "PT trace to tail (required)")
	flag.StringVar(&o.OutDir, "out", "", "directory receiving plan-NNNNN.json revisions (required)")
	flag.StringVar(&o.StatePath, "state", "", "checkpoint sidecar path (default <pt>.ptwatch)")
	flag.IntVar(&o.Window, "window", 0, "rolling analysis window in blocks (default 2048)")
	flag.IntVar(&o.Epoch, "epoch", 0, "blocks between re-analyses (default: window)")
	flag.IntVar(&o.CheckpointEvery, "checkpoint-every", 0, "blocks between checkpoints (default: epoch)")
	flag.Uint64Var(&o.MaxBlocks, "max-blocks", 0, "pause after this many total blocks (0 = unlimited)")
	flag.Float64Var(&o.Threshold, "threshold", 0, "invalidation threshold; 0 sweeps per epoch")
	flag.Float64Var(&o.Hysteresis, "hysteresis", 0, "min predicted-speedup shift (pct points) to displace the published plan (default 0.5)")
	flag.IntVar(&o.Stable, "stable", 0, "consecutive shifted epochs before publishing (default 2)")
	flag.StringVar(&o.Policy, "policy", "lru", "underlying replacement policy to tune against")
	flag.StringVar(&o.Prefetcher, "prefetcher", "fdip", "prefetcher to tune against (none, nlp, fdip)")
	flag.IntVar(&o.Warmup, "warmup", 0, "warmup blocks excluded from tuning measurements")
	flag.BoolVar(&o.Follow, "follow", true, "keep tailing at end-of-file; -follow=false processes the current snapshot and exits")
	flag.DurationVar(&o.Poll, "poll", 0, "base poll interval for a quiet file (default 2ms)")
	flag.DurationVar(&o.MaxPoll, "max-poll", 0, "poll backoff ceiling (default 250ms)")
	flag.DurationVar(&o.Stall, "stall", 0, "give up after this long without new bytes (0 = wait forever)")
	flag.IntVar(&o.Workers, "j", 0, "parallel epoch simulations (default GOMAXPROCS)")
	flag.StringVar(&o.CacheDir, "cachedir", "", "directory for the persistent result store (default: no persistence)")
	flag.StringVar(&o.StoreURL, "store", "", "rippled URL for a shared fleet result store; mutually exclusive with -cachedir")
	flag.IntVar(&o.Retries, "retries", 2, "retry budget for transiently failing simulations")
	flag.BoolVar(&o.Mmap, "mmap", false, "memory-map the trace (unsupported while tailing: a mapping is a fixed-size snapshot and cannot observe growth; the tail reads through ReadAt by design — see rippleanalyze -mmap for offline passes)")
	flag.IntVar(&o.Decoders, "decoders", 1, "parallel PSB region decoders (unsupported while tailing: the tail decodes incrementally in stream order; use rippleanalyze -decoders on a complete file)")
	flag.Parse()
	if o.CacheDir != "" && o.StoreURL != "" {
		fmt.Fprintln(os.Stderr, "ripplewatch: -cachedir and -store are mutually exclusive")
		os.Exit(2)
	}
	o.Stdout = os.Stdout

	// SIGINT/SIGTERM close the tail's Done channel: the watcher unblocks,
	// flushes a final checkpoint, and run returns OutcomeCanceled.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "ripplewatch: %v: stopping after final checkpoint\n", s)
		close(done)
	}()
	o.Done = done

	if _, err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ripplewatch:", err)
		os.Exit(1)
	}
}

// options carries one invocation's inputs; tests drive run directly.
type options struct {
	ProgPath, PTPath, OutDir, StatePath string
	Window, Epoch, CheckpointEvery      int
	MaxBlocks                           uint64
	Threshold, Hysteresis               float64
	Stable                              int
	Policy, Prefetcher                  string
	Warmup                              int
	Follow                              bool
	Poll, MaxPoll, Stall                time.Duration
	Workers                             int
	CacheDir, StoreURL                  string
	Retries                             int
	Mmap                                bool
	Decoders                            int
	Done                                <-chan struct{}
	Stdout                              io.Writer
}

// run drives watch.Run, restarting fresh when the trace rotates under a
// following watcher (a fresh inode is a new stream: the stale checkpoint
// is rejected by its content binding and the watcher starts over).
func run(o options) (watch.Result, error) {
	var res watch.Result
	if o.ProgPath == "" || o.PTPath == "" || o.OutDir == "" {
		return res, fmt.Errorf("-prog, -pt, and -out are required")
	}
	if o.Mmap {
		return res, fmt.Errorf("-mmap is not supported while tailing: a mapping is a fixed-size snapshot and cannot observe file growth (the tail reads through ReadAt; mmap an offline pass with rippleanalyze instead)")
	}
	if o.Decoders > 1 {
		return res, fmt.Errorf("-decoders %d is not supported while tailing: the tail decodes incrementally in stream order (parallel region decode needs a complete file; use rippleanalyze -decoders)", o.Decoders)
	}
	if o.Stdout == nil {
		o.Stdout = io.Discard
	}
	pf, err := os.Open(o.ProgPath)
	if err != nil {
		return res, err
	}
	prog, err := program.Load(pf)
	pf.Close()
	if err != nil {
		return res, err
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return res, err
	}
	pool, err := buildPool(o)
	if err != nil {
		return res, err
	}
	cfg := watch.Config{
		Prog:            prog,
		TracePath:       o.PTPath,
		StatePath:       o.StatePath,
		OutDir:          o.OutDir,
		Window:          o.Window,
		Epoch:           o.Epoch,
		CheckpointEvery: o.CheckpointEvery,
		MaxBlocks:       o.MaxBlocks,
		Threshold:       o.Threshold,
		Hysteresis:      o.Hysteresis,
		Stable:          o.Stable,
		Policy:          o.Policy,
		Prefetcher:      o.Prefetcher,
		Warmup:          o.Warmup,
		Pool:            pool,
		Log:             o.Stdout,
		Tail: watch.TailConfig{
			Follow:  o.Follow,
			Poll:    o.Poll,
			MaxPoll: o.MaxPoll,
			Stall:   o.Stall,
			Done:    o.Done,
		},
	}
	for {
		res, err = watch.Run(cfg)
		if err != nil {
			return res, err
		}
		if res.Outcome == watch.OutcomeRotated && o.Follow {
			select {
			case <-o.Done:
				// The rotation raced a shutdown signal; stop.
			default:
				fmt.Fprintln(o.Stdout, "watch: trace rotated; restarting against the new stream")
				continue
			}
		}
		break
	}
	fmt.Fprintf(o.Stdout, "final: outcome=%s resumed=%v blocks=%d epochs=%d revisions=%d regions=%d\n",
		res.Outcome, res.Resumed, res.Total, res.Epochs, res.Revisions, res.Regions)
	return res, nil
}

// buildPool wires the epoch simulations' execution substrate: a worker
// pool, optionally backed by a persistent local store (-cachedir) or a
// shared rippled fleet store (-store).
func buildPool(o options) (*runner.Pool, error) {
	var store runner.StoreBackend
	if o.StoreURL != "" {
		cl, err := rippled.NewClient(o.StoreURL, rippled.ClientOptions{Log: os.Stderr})
		if err != nil {
			return nil, err
		}
		store = cl
	} else if o.CacheDir != "" {
		st, err := runner.OpenStore(o.CacheDir)
		if err != nil {
			return nil, err
		}
		store = st
	}
	return runner.New(runner.Options{Workers: o.Workers, Store: store, Retries: o.Retries}), nil
}
