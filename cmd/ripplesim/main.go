// Command ripplesim drives a recorded trace through the simulated frontend
// under a chosen prefetcher and replacement policy, optionally with a
// Ripple injection plan applied, and reports the paper's metrics: IPC,
// MPKI, coverage, accuracy, and instruction overheads.
//
// Comma-separated -policy/-prefetcher values sweep the cross product: the
// configurations simulate in parallel across -j workers and print one
// summary line each, in argument order. With -cachedir, sweep results
// persist in a content-addressed store keyed by the input file contents
// and the full configuration, so repeated sweeps only simulate what
// changed.
//
// With -ideal the run additionally reports the ideal (Demand-MIN) miss
// count for the exact access stream this configuration produced, via the
// streaming oracle engine selected by -oracle (exact two-pass Belady, or
// a single-pass sampled-set OPTGen estimate with -oracle sampled).
//
// With -index the trace replays through its .ptidx seek index (written
// by ripplegen -index, rebuilt automatically when missing or stale),
// exposing seek and checkpoint capabilities to any consumer that probes
// for them. Results are byte-identical with or without it, and store
// entries are shared between the two modes. -index conflicts with
// -recover because the index is only defined over a cleanly decoding
// trace.
//
// Usage:
//
//	ripplesim -prog /tmp/fh.prog -pt /tmp/fh.pt -policy lru -prefetcher fdip
//	ripplesim -prog /tmp/fh.prog -pt /tmp/fh.pt -plan /tmp/fh.plan -accuracy
//	ripplesim -prog /tmp/fh.prog -pt /tmp/fh.pt -ideal -oracle sampled
//	ripplesim -prog /tmp/fh.prog -pt /tmp/fh.pt -policy lru,srrip,drrip -prefetcher none,fdip -j 4 -cachedir /tmp/simcache
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ripple/internal/blockseq"
	"ripple/internal/cliflag"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/opt"
	"ripple/internal/prefetch"
	"ripple/internal/program"
	"ripple/internal/replacement"
	"ripple/internal/rippled"
	"ripple/internal/runner"
	"ripple/internal/trace"
)

func main() {
	progPath := flag.String("prog", "", "program image to simulate (required)")
	ptPath := flag.String("pt", "", "PT trace from ripplegen (required)")
	traceProgPath := flag.String("trace-prog", "", "program image the trace was recorded against, when -prog is a rewritten image (default: -prog)")
	planPath := flag.String("plan", "", "optional injection plan from rippleanalyze")
	policy := flag.String("policy", "lru", "replacement policy, or comma-separated list to sweep ("+strings.Join(replacement.Names(), ", ")+")")
	prefetcher := flag.String("prefetcher", "fdip", "prefetcher, or comma-separated list to sweep ("+strings.Join(prefetch.Names(), ", ")+")")
	warmup := flag.Int("warmup", 0, "warmup blocks excluded from measurement")
	blocks := flag.Int("blocks", 0, "simulate only the first N trace blocks (default: whole trace)")
	accuracy := flag.Bool("accuracy", false, "score replacement decisions against the Belady oracle")
	ideal := flag.Bool("ideal", false, "also report the ideal (Demand-MIN) miss count for this configuration's access stream")
	oracleEngine := flag.String("oracle", "exact", "oracle engine for -ideal: exact (two-pass streaming Belady) or sampled (single-pass sampled-set OPTGen estimate)")
	oracleSets := flag.Int("oracle-sets", 0, "sampled-set budget for -oracle sampled (default 64)")
	demote := flag.Bool("demote", false, "execute hints as LRU demotions instead of invalidations")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the report")
	workers := flag.Int("j", 0, "parallel workers for sweep mode (default GOMAXPROCS)")
	cachedir := flag.String("cachedir", "", "persistent result store for sweep mode (default: none)")
	storeURL := flag.String("store", "", "rippled URL for a shared fleet result store in sweep mode (e.g. http://127.0.0.1:8344); mutually exclusive with -cachedir")
	rec := flag.Bool("recover", false, "resynchronize past damaged trace regions instead of failing")
	index := flag.Bool("index", false, "replay through the .ptidx seek index (built on the fly if absent or stale); conflicts with -recover")
	useMmap := flag.Bool("mmap", true, "memory-map the trace for zero-copy decode (ReadAt fallback when disabled or unsupported by the platform)")
	decoders := flag.Int("decoders", 1, "decode this many PSB sync regions concurrently per pass (> 1 requires -mmap)")
	flag.Parse()

	policies := strings.Split(*policy, ",")
	prefetchers := strings.Split(*prefetcher, ",")
	// -blocks 0 legitimately means "simulate nothing", so "unset" must be
	// distinguished from the zero value (the flag.Visit discipline).
	limit := -1
	if cliflag.Passed("blocks") {
		limit = *blocks
	}
	fo := trace.FileOptions{NoMmap: !*useMmap, Decoders: *decoders}
	var err error
	if *rec && *index {
		err = fmt.Errorf("-index and -recover are mutually exclusive")
	} else if *decoders > 1 && !*useMmap {
		err = fmt.Errorf("-decoders %d requires -mmap (parallel decode runs over the mapping)", *decoders)
	} else if *cachedir != "" && *storeURL != "" {
		err = fmt.Errorf("-cachedir and -store are mutually exclusive")
	} else if *oracleEngine != "exact" && *oracleEngine != "sampled" {
		err = fmt.Errorf("-oracle must be 'exact' or 'sampled'")
	} else if len(policies) > 1 || len(prefetchers) > 1 {
		if *ideal {
			err = fmt.Errorf("-ideal is only available in single-configuration mode, not sweeps")
		} else {
			err = sweep(*progPath, *traceProgPath, *ptPath, *planPath, policies, prefetchers,
				limit, *warmup, *accuracy, *demote, *jsonOut, *workers, *cachedir, *storeURL, *rec, *index, fo)
		}
	} else {
		err = run(*progPath, *traceProgPath, *ptPath, *planPath, *policy, *prefetcher, limit, *warmup,
			*accuracy, *demote, *jsonOut, *rec, *index, *ideal, *oracleEngine, *oracleSets, fo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ripplesim:", err)
		os.Exit(1)
	}
}

func run(progPath, traceProgPath, ptPath, planPath, policy, prefetcher string, limit, warmup int,
	accuracy, demote, jsonOut, rec, indexed, ideal bool, oracleEngine string, oracleSets int, fo trace.FileOptions) error {
	if progPath == "" || ptPath == "" {
		return fmt.Errorf("-prog and -pt are required")
	}
	if traceProgPath == "" {
		traceProgPath = progPath
	}
	prog, tr, reporter, err := load(progPath, traceProgPath, ptPath, limit, rec, indexed, fo)
	if err != nil {
		return err
	}
	if planPath != "" {
		f, err := os.Open(planPath)
		if err != nil {
			return err
		}
		plan, err := core.LoadPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		prog = plan.Apply(prog)
		fmt.Printf("applied plan: %d invalidate instructions in %d cue blocks\n",
			plan.StaticInstructions(), len(plan.Injections))
	}

	pol, err := replacement.New(policy)
	if err != nil {
		return err
	}
	pf, err := prefetch.New(prefetcher, prog)
	if err != nil {
		return err
	}
	hints := frontend.HintInvalidate
	if demote {
		hints = frontend.HintDemote
	}
	res, err := frontend.Run(frontend.DefaultParams(), prog, tr, frontend.Options{
		Policy:          pol,
		Prefetcher:      pf,
		Hints:           hints,
		MeasureAccuracy: accuracy,
		WarmupBlocks:    warmup,
	})
	if err != nil {
		return err
	}

	var idealRep *idealReport
	if ideal {
		if idealRep, err = idealOf(prog, tr, policy, prefetcher, hints, warmup, oracleEngine, oracleSets); err != nil {
			return err
		}
	}

	if jsonOut {
		return emitJSON(res, coverageOf(reporter), idealRep)
	}
	fmt.Printf("%s: %s prefetcher, %s replacement\n", res.Program, res.Prefetcher, res.Policy)
	printCoverage(reporter)
	fmt.Printf("  instructions: %d (%d injected hints, %.2f%% dynamic overhead)\n",
		res.Instrs, res.HintInstrs, core.DynamicOverheadPct(res))
	fmt.Printf("  cycles: %d  IPC: %.3f\n", res.Cycles, res.IPC())
	fmt.Printf("  L1I MPKI: %.2f (misses %d, late prefetches %d, compulsory %d)\n",
		res.MPKI(), res.L1I.DemandMisses, res.LateMisses, res.Compulsory)
	fmt.Printf("  miss breakdown: L2 %d, L3 %d, memory %d\n", res.L2Hits, res.L3Hits, res.MemFills)
	if res.L1I.HintInvalidations+res.L1I.Demotions > 0 {
		fmt.Printf("  ripple: coverage %.1f%% (%d hint evictions, %d hints found no victim)\n",
			res.Coverage()*100, res.L1I.HintFreedFills, res.L1I.HintMisses)
	}
	if idealRep != nil {
		fmt.Printf("  ideal replacement (demand-min, %s): %d misses", idealRep.Engine, idealRep.Misses)
		if idealRep.Engine == "sampled" {
			fmt.Printf(" estimated from %d/%d sets (history %d)", idealRep.SampleSets, idealRep.TotalSets, idealRep.History)
		}
		fmt.Printf("; this policy took %d\n", res.L1I.DemandMisses)
	}
	if accuracy {
		fmt.Printf("  accuracy: policy %.1f%%", res.PolicyAccuracy()*100)
		if res.HintEvictions > 0 {
			fmt.Printf(", ripple %.1f%%, combined %.1f%%", res.HintAccuracy()*100, res.CombinedAccuracy()*100)
		}
		fmt.Println()
	}
	if res.BranchMPKI > 0 {
		fmt.Printf("  branch MPKI: %.2f\n", res.BranchMPKI)
	}
	return nil
}

// sweep simulates every policy × prefetcher combination in parallel and
// prints one summary line per configuration, in argument order. Results
// are deterministic regardless of worker count; with a cache directory
// they are keyed by the SHA-256 of the input files plus the full
// configuration, so editing the trace or plan invalidates exactly the
// affected entries.
func sweep(progPath, traceProgPath, ptPath, planPath string, policies, prefetchers []string,
	limit, warmup int, accuracy, demote, jsonOut bool, workers int, cachedir, storeURL string, rec, indexed bool, fo trace.FileOptions) error {
	if progPath == "" || ptPath == "" {
		return fmt.Errorf("-prog and -pt are required")
	}
	if traceProgPath == "" {
		traceProgPath = progPath
	}
	prog, tr, reporter, err := load(progPath, traceProgPath, ptPath, limit, rec, indexed, fo)
	if err != nil {
		return err
	}
	planHash := "none"
	if planPath != "" {
		f, err := os.Open(planPath)
		if err != nil {
			return err
		}
		plan, err := core.LoadPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		prog = plan.Apply(prog)
		if h, err := fileHash(planPath); err == nil {
			planHash = h
		}
	}
	progHash, err := fileHash(progPath)
	if err != nil {
		return err
	}
	ptHash, err := fileHash(ptPath)
	if err != nil {
		return err
	}
	params := frontend.DefaultParams()
	base := fmt.Sprintf("rsim1|prog=%s|pt=%s|plan=%s|params=%+v|warmup=%d|acc=%t|demote=%t",
		progHash, ptHash, planHash, params, warmup, accuracy, demote)
	if limit >= 0 {
		// Appended only when -blocks was passed, so pre-existing store
		// entries for whole-trace sweeps stay addressable.
		base += fmt.Sprintf("|blocks=%d", limit)
	}
	if rec {
		// Likewise appended only with -recover: a clean trace decodes
		// identically in both modes, but a damaged one yields a different
		// (shorter) block sequence under the same file hash.
		base += "|recover=1"
	}

	var store runner.StoreBackend
	if storeURL != "" {
		cl, cerr := rippled.NewClient(storeURL, rippled.ClientOptions{Log: os.Stderr})
		if cerr != nil {
			return cerr
		}
		store = cl
	} else if cachedir != "" {
		st, serr := runner.OpenStore(cachedir)
		if serr != nil {
			return serr
		}
		store = st
	}
	pool := runner.New(runner.Options{Workers: workers, Store: store, Log: os.Stderr})
	hints := frontend.HintInvalidate
	if demote {
		hints = frontend.HintDemote
	}
	job := func(pol, pf string) runner.Job {
		sig := fmt.Sprintf("%s|pol=%s|pf=%s", base, pol, pf)
		cost := 1.0
		if n, ok := blockseq.LenHint(tr); ok {
			cost = float64(n)
		}
		return runner.NewJob(sig, pol+"/"+pf, cost,
			func(context.Context) (*frontend.Result, error) {
				p, err := replacement.New(pol)
				if err != nil {
					return nil, err
				}
				pre, err := prefetch.New(pf, prog)
				if err != nil {
					return nil, err
				}
				r, err := frontend.Run(params, prog, tr, frontend.Options{
					Policy:          p,
					Prefetcher:      pre,
					Hints:           hints,
					MeasureAccuracy: accuracy,
					WarmupBlocks:    warmup,
				})
				if err != nil {
					return nil, err
				}
				return &r, nil
			})
	}
	var jobs []runner.Job
	for _, pol := range policies {
		for _, pf := range prefetchers {
			jobs = append(jobs, job(pol, pf))
		}
	}
	ctx := context.Background()
	if err := pool.RunAll(ctx, jobs); err != nil {
		return err
	}
	if !jsonOut {
		printCoverage(reporter)
	}
	var out []map[string]interface{}
	for _, pol := range policies {
		for _, pf := range prefetchers {
			v, err := pool.Do(ctx, job(pol, pf))
			if err != nil {
				return err
			}
			res := *(v.(*frontend.Result))
			if jsonOut {
				out = append(out, withCoverage(resultJSON(res), coverageOf(reporter)))
				continue
			}
			fmt.Printf("%-10s %-10s IPC %.3f  MPKI %6.2f  cycles %d\n",
				pol, pf, res.IPC(), res.MPKI(), res.Cycles)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return nil
}

// fileHash returns the SHA-256 hex of a file's contents.
func fileHash(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:]), nil
}

// idealReport is the -ideal result: the Demand-MIN miss count for this
// configuration's access stream (prefetches included), the lower bound
// any replacement policy for the same prefetcher is compared against.
type idealReport struct {
	Engine     string
	Misses     uint64
	SampleSets int
	TotalSets  int
	History    int
}

// idealOf replays the exact access stream the simulation produced — same
// policy, prefetcher, hints, and warmup — through the selected oracle
// engine and returns its Demand-MIN miss count. The trace is re-decoded
// per oracle pass; nothing is materialized.
func idealOf(prog *program.Program, tr blockseq.Source, policy, prefetcher string,
	hints frontend.HintMode, warmup int, engine string, sets int) (*idealReport, error) {
	params := frontend.DefaultParams()
	newOpts := func() (frontend.Options, error) {
		pol, err := replacement.New(policy)
		if err != nil {
			return frontend.Options{}, err
		}
		pf, err := prefetch.New(prefetcher, prog)
		if err != nil {
			return frontend.Options{}, err
		}
		return frontend.Options{Policy: pol, Prefetcher: pf, Hints: hints, WarmupBlocks: warmup}, nil
	}
	events := frontend.AccessEvents(params, prog, tr, newOpts)
	switch engine {
	case "exact":
		r, err := opt.SimulateSource(events, params.L1I, opt.ModeDemandMIN, false)
		if err != nil {
			return nil, err
		}
		return &idealReport{Engine: engine, Misses: r.DemandMisses}, nil
	case "sampled":
		r, err := opt.SimulateSampled(events, params.L1I, opt.ModeDemandMIN, opt.OPTGenConfig{SampleSets: sets})
		if err != nil {
			return nil, err
		}
		return &idealReport{Engine: engine, Misses: r.EstimatedDemandMisses(),
			SampleSets: r.SampleSets, TotalSets: r.TotalSets, History: r.History}, nil
	}
	return nil, fmt.Errorf("unknown oracle engine %q", engine)
}

// emitJSON writes the run's metrics as a single JSON object, for scripted
// consumers (dashboards, regression checks).
func emitJSON(res frontend.Result, cov *trace.DecodeReport, ideal *idealReport) error {
	m := withCoverage(resultJSON(res), cov)
	if ideal != nil {
		m["ideal_misses"] = ideal.Misses
		m["ideal_engine"] = ideal.Engine
		if ideal.Engine == "sampled" {
			m["ideal_sample_sets"] = ideal.SampleSets
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// coverageOf extracts the decode report a recovering source published
// after the simulation's passes; nil otherwise.
func coverageOf(reporter trace.Reporting) *trace.DecodeReport {
	if reporter == nil {
		return nil
	}
	rep, ok := reporter.DecodeReport()
	if !ok {
		return nil
	}
	return &rep
}

// withCoverage adds the -recover decode accounting to a JSON result; the
// schema is unchanged when not recovering.
func withCoverage(m map[string]interface{}, cov *trace.DecodeReport) map[string]interface{} {
	if cov != nil {
		m["trace_coverage"] = cov.Coverage()
		m["trace_blocks_lost"] = cov.BlocksLost()
		m["trace_damage_regions"] = len(cov.Regions)
	}
	return m
}

// printCoverage reports trace damage on the human-readable path.
func printCoverage(reporter trace.Reporting) {
	cov := coverageOf(reporter)
	if cov == nil {
		return
	}
	fmt.Printf("  trace coverage: %.2f%% of declared profile (%d of %d blocks", cov.Coverage()*100, cov.Decoded, cov.Declared)
	if len(cov.Regions) > 0 {
		fmt.Printf("; %d damaged regions, %d blocks lost", len(cov.Regions), cov.BlocksLost())
	}
	fmt.Println(")")
}

// resultJSON flattens a result into the JSON schema emitJSON documents.
func resultJSON(res frontend.Result) map[string]interface{} {
	return map[string]interface{}{
		"program":           res.Program,
		"policy":            res.Policy,
		"prefetcher":        res.Prefetcher,
		"instructions":      res.Instrs,
		"hint_instructions": res.HintInstrs,
		"cycles":            res.Cycles,
		"ipc":               res.IPC(),
		"mpki":              res.MPKI(),
		"demand_misses":     res.L1I.DemandMisses,
		"late_prefetches":   res.LateMisses,
		"compulsory_misses": res.Compulsory,
		"l2_hits":           res.L2Hits,
		"l3_hits":           res.L3Hits,
		"memory_fills":      res.MemFills,
		"coverage":          res.Coverage(),
		"hint_accuracy":     res.HintAccuracy(),
		"policy_accuracy":   res.PolicyAccuracy(),
		"combined_accuracy": res.CombinedAccuracy(),
		"dynamic_overhead":  core.DynamicOverheadPct(res),
		"branch_mpki":       res.BranchMPKI,
	}
}

// load reads the simulation image and wires up a streaming source that
// decodes the trace against the image it was recorded on (block IDs are
// stable across rewriting, so the block sequence transfers). The trace is
// never materialized: each simulation pass re-decodes the file, keeping
// memory O(1) in the trace length. limit >= 0 caps the source to the
// first limit blocks. With rec the trace decodes in recovery mode and
// the returned reporter (the unwrapped trace source) publishes the
// damage accounting once a pass completes; the reporter is nil in
// strict mode. With indexed the source replays through the .ptidx seek
// index (rebuilt if missing or stale) — a pure acceleration: the block
// sequence, and therefore every result, is byte-identical.
func load(progPath, traceProgPath, ptPath string, limit int, rec, indexed bool, fo trace.FileOptions) (*program.Program, blockseq.Source, trace.Reporting, error) {
	loadProg := func(path string) (*program.Program, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Load(f)
	}
	prog, err := loadProg(progPath)
	if err != nil {
		return nil, nil, nil, err
	}
	decodeProg := prog
	if traceProgPath != progPath {
		if decodeProg, err = loadProg(traceProgPath); err != nil {
			return nil, nil, nil, err
		}
		if decodeProg.NumBlocks() != prog.NumBlocks() {
			return nil, nil, nil, fmt.Errorf("-trace-prog has %d blocks, -prog has %d: not the same program", decodeProg.NumBlocks(), prog.NumBlocks())
		}
	}
	var src blockseq.Source
	var reporter trace.Reporting
	switch {
	case rec:
		fo.Recover = true
		ts := trace.FileSourceOptions(ptPath, decodeProg, fo)
		reporter, src = ts.(trace.Reporting), ts
	case indexed:
		if src, err = trace.IndexedFileSourceOptions(ptPath, decodeProg, fo); err != nil {
			return nil, nil, nil, err
		}
	default:
		src = trace.FileSourceOptions(ptPath, decodeProg, fo)
	}
	if limit >= 0 {
		src = blockseq.Limit(src, limit)
	}
	return prog, src, reporter, nil
}
