// Command ripplesim drives a recorded trace through the simulated frontend
// under a chosen prefetcher and replacement policy, optionally with a
// Ripple injection plan applied, and reports the paper's metrics: IPC,
// MPKI, coverage, accuracy, and instruction overheads.
//
// Usage:
//
//	ripplesim -prog /tmp/fh.prog -pt /tmp/fh.pt -policy lru -prefetcher fdip
//	ripplesim -prog /tmp/fh.prog -pt /tmp/fh.pt -plan /tmp/fh.plan -accuracy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/prefetch"
	"ripple/internal/program"
	"ripple/internal/replacement"
	"ripple/internal/trace"
)

func main() {
	progPath := flag.String("prog", "", "program image to simulate (required)")
	ptPath := flag.String("pt", "", "PT trace from ripplegen (required)")
	traceProgPath := flag.String("trace-prog", "", "program image the trace was recorded against, when -prog is a rewritten image (default: -prog)")
	planPath := flag.String("plan", "", "optional injection plan from rippleanalyze")
	policy := flag.String("policy", "lru", "replacement policy ("+strings.Join(replacement.Names(), ", ")+")")
	prefetcher := flag.String("prefetcher", "fdip", "prefetcher ("+strings.Join(prefetch.Names(), ", ")+")")
	warmup := flag.Int("warmup", 0, "warmup blocks excluded from measurement")
	accuracy := flag.Bool("accuracy", false, "score replacement decisions against the Belady oracle")
	demote := flag.Bool("demote", false, "execute hints as LRU demotions instead of invalidations")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the report")
	flag.Parse()

	if err := run(*progPath, *traceProgPath, *ptPath, *planPath, *policy, *prefetcher, *warmup, *accuracy, *demote, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "ripplesim:", err)
		os.Exit(1)
	}
}

func run(progPath, traceProgPath, ptPath, planPath, policy, prefetcher string, warmup int, accuracy, demote, jsonOut bool) error {
	if progPath == "" || ptPath == "" {
		return fmt.Errorf("-prog and -pt are required")
	}
	if traceProgPath == "" {
		traceProgPath = progPath
	}
	prog, tr, err := load(progPath, traceProgPath, ptPath)
	if err != nil {
		return err
	}
	if planPath != "" {
		f, err := os.Open(planPath)
		if err != nil {
			return err
		}
		plan, err := core.LoadPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		prog = plan.Apply(prog)
		fmt.Printf("applied plan: %d invalidate instructions in %d cue blocks\n",
			plan.StaticInstructions(), len(plan.Injections))
	}

	pol, err := replacement.New(policy)
	if err != nil {
		return err
	}
	pf, err := prefetch.New(prefetcher, prog)
	if err != nil {
		return err
	}
	hints := frontend.HintInvalidate
	if demote {
		hints = frontend.HintDemote
	}
	res, err := frontend.Run(frontend.DefaultParams(), prog, tr, frontend.Options{
		Policy:          pol,
		Prefetcher:      pf,
		Hints:           hints,
		MeasureAccuracy: accuracy,
		WarmupBlocks:    warmup,
	})
	if err != nil {
		return err
	}

	if jsonOut {
		return emitJSON(res)
	}
	fmt.Printf("%s: %s prefetcher, %s replacement\n", res.Program, res.Prefetcher, res.Policy)
	fmt.Printf("  instructions: %d (%d injected hints, %.2f%% dynamic overhead)\n",
		res.Instrs, res.HintInstrs, core.DynamicOverheadPct(res))
	fmt.Printf("  cycles: %d  IPC: %.3f\n", res.Cycles, res.IPC())
	fmt.Printf("  L1I MPKI: %.2f (misses %d, late prefetches %d, compulsory %d)\n",
		res.MPKI(), res.L1I.DemandMisses, res.LateMisses, res.Compulsory)
	fmt.Printf("  miss breakdown: L2 %d, L3 %d, memory %d\n", res.L2Hits, res.L3Hits, res.MemFills)
	if res.L1I.HintInvalidations+res.L1I.Demotions > 0 {
		fmt.Printf("  ripple: coverage %.1f%% (%d hint evictions, %d hints found no victim)\n",
			res.Coverage()*100, res.L1I.HintFreedFills, res.L1I.HintMisses)
	}
	if accuracy {
		fmt.Printf("  accuracy: policy %.1f%%", res.PolicyAccuracy()*100)
		if res.HintEvictions > 0 {
			fmt.Printf(", ripple %.1f%%, combined %.1f%%", res.HintAccuracy()*100, res.CombinedAccuracy()*100)
		}
		fmt.Println()
	}
	if res.BranchMPKI > 0 {
		fmt.Printf("  branch MPKI: %.2f\n", res.BranchMPKI)
	}
	return nil
}

// emitJSON writes the run's metrics as a single JSON object, for scripted
// consumers (dashboards, regression checks).
func emitJSON(res frontend.Result) error {
	out := map[string]interface{}{
		"program":           res.Program,
		"policy":            res.Policy,
		"prefetcher":        res.Prefetcher,
		"instructions":      res.Instrs,
		"hint_instructions": res.HintInstrs,
		"cycles":            res.Cycles,
		"ipc":               res.IPC(),
		"mpki":              res.MPKI(),
		"demand_misses":     res.L1I.DemandMisses,
		"late_prefetches":   res.LateMisses,
		"compulsory_misses": res.Compulsory,
		"l2_hits":           res.L2Hits,
		"l3_hits":           res.L3Hits,
		"memory_fills":      res.MemFills,
		"coverage":          res.Coverage(),
		"hint_accuracy":     res.HintAccuracy(),
		"policy_accuracy":   res.PolicyAccuracy(),
		"combined_accuracy": res.CombinedAccuracy(),
		"dynamic_overhead":  core.DynamicOverheadPct(res),
		"branch_mpki":       res.BranchMPKI,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// load reads the simulation image and decodes the trace against the image
// it was recorded on (block IDs are stable across rewriting, so the block
// sequence transfers).
func load(progPath, traceProgPath, ptPath string) (*program.Program, []program.BlockID, error) {
	loadProg := func(path string) (*program.Program, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Load(f)
	}
	prog, err := loadProg(progPath)
	if err != nil {
		return nil, nil, err
	}
	decodeProg := prog
	if traceProgPath != progPath {
		if decodeProg, err = loadProg(traceProgPath); err != nil {
			return nil, nil, err
		}
		if decodeProg.NumBlocks() != prog.NumBlocks() {
			return nil, nil, fmt.Errorf("-trace-prog has %d blocks, -prog has %d: not the same program", decodeProg.NumBlocks(), prog.NumBlocks())
		}
	}
	tf, err := os.Open(ptPath)
	if err != nil {
		return nil, nil, err
	}
	defer tf.Close()
	tr, err := trace.Decode(tf, decodeProg)
	if err != nil {
		return nil, nil, err
	}
	return prog, tr, nil
}
