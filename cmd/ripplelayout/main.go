// Command ripplelayout applies the profile-guided code-layout
// optimizations (C3 function clustering + hot/cold block reordering) to a
// program image using a recorded trace — the AutoFDO/BOLT-style stage that
// can run before Ripple's injection in a combined pipeline.
//
// Usage:
//
//	ripplelayout -prog /tmp/fh.prog -pt /tmp/fh.pt -out /tmp/fh-bolt.prog
package main

import (
	"flag"
	"fmt"
	"os"

	"ripple/internal/layout"
	"ripple/internal/program"
	"ripple/internal/trace"
)

func main() {
	progPath := flag.String("prog", "", "program image from ripplegen (required)")
	ptPath := flag.String("pt", "", "PT trace from ripplegen (required)")
	out := flag.String("out", "", "output path for the optimized image (required)")
	noFuncs := flag.Bool("no-funcs", false, "disable C3 function reordering")
	noBlocks := flag.Bool("no-blocks", false, "disable hot/cold block reordering")
	flag.Parse()

	if err := run(*progPath, *ptPath, *out, !*noFuncs, !*noBlocks); err != nil {
		fmt.Fprintln(os.Stderr, "ripplelayout:", err)
		os.Exit(1)
	}
}

func run(progPath, ptPath, out string, funcs, blocks bool) error {
	if progPath == "" || ptPath == "" || out == "" {
		return fmt.Errorf("-prog, -pt, and -out are required")
	}
	pf, err := os.Open(progPath)
	if err != nil {
		return err
	}
	prog, err := program.Load(pf)
	pf.Close()
	if err != nil {
		return err
	}
	prof, err := layout.ProfileFromTrace(prog, trace.FileSource(ptPath, prog))
	if err != nil {
		return err
	}
	opts := layout.DefaultOptions()
	opts.ReorderFunctions = funcs
	opts.ReorderBlocks = blocks
	optimized, err := layout.Optimize(prog, prof, opts)
	if err != nil {
		return err
	}

	hotBytes, hotLines := layout.HotBytes(prog, prof)
	fmt.Printf("profiled: %d block executions, %.0fKB hot code over %d lines\n",
		prof.TotalBlocks(), float64(hotBytes)/1024, hotLines)
	fmt.Printf("layout: function reorder=%v, block reorder=%v\n", funcs, blocks)

	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	return optimized.Save(of)
}
