// Command ripplegen synthesizes one of the nine data-center applications
// and records a PT-like control-flow trace of it, producing the two
// artifacts the rest of the pipeline consumes: a program image and a
// packet-encoded basic-block trace.
//
// Usage:
//
//	ripplegen -app finagle-http -blocks 600000 -out /tmp/fh
//
// writes /tmp/fh.prog (program image) and /tmp/fh.pt (trace packets).
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"ripple/internal/program"
	"ripple/internal/trace"
	"ripple/internal/workload"
)

func main() {
	appName := flag.String("app", "finagle-http", "application model ("+strings.Join(workload.Names(), ", ")+")")
	blocks := flag.Int("blocks", 600_000, "minimum trace length in executed basic blocks")
	input := flag.Int("input", 0, "input configuration (0-3)")
	out := flag.String("out", "", "output path prefix (required)")
	syncEvery := flag.Int("syncevery", 0, "emit a resynchronization point roughly every N blocks so damaged traces recover with bounded loss (0: none)")
	index := flag.Bool("index", false, "also write a .ptidx seek-index sidecar so consumers can replay windows without decoding each window's full prefix")
	flag.Parse()

	if err := run(*appName, *blocks, *input, *syncEvery, *out, *index); err != nil {
		fmt.Fprintln(os.Stderr, "ripplegen:", err)
		os.Exit(1)
	}
}

func run(appName string, blocks, input, syncEvery int, out string, index bool) error {
	if out == "" {
		return fmt.Errorf("-out prefix is required")
	}
	if blocks < 1 {
		return fmt.Errorf("-blocks must be positive (got %d)", blocks)
	}
	if input < 0 {
		return fmt.Errorf("-input must be non-negative (got %d)", input)
	}
	if syncEvery < 0 {
		return fmt.Errorf("-syncevery must be non-negative (got %d)", syncEvery)
	}
	m, ok := workload.ByName(appName)
	if !ok {
		return fmt.Errorf("unknown app %q (have %s)", appName, strings.Join(workload.Names(), ", "))
	}
	app, err := workload.Build(m)
	if err != nil {
		return err
	}
	progF, err := os.Create(out + ".prog")
	if err != nil {
		return err
	}
	defer progF.Close()
	if err := app.Prog.Save(progF); err != nil {
		return err
	}

	ptF, err := os.Create(out + ".pt")
	if err != nil {
		return err
	}
	defer ptF.Close()
	stats, err := trace.EncodeSourceSync(ptF, app.Prog, app.Stream(input, blocks), syncEvery)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d funcs, %d blocks, %.1fKB text\n",
		m.Name, len(app.Prog.Funcs), app.Prog.NumBlocks(), float64(app.Prog.TotalBytes())/1024)
	fmt.Printf("trace: %d blocks, %d TNT bits, %d TIPs, %d/%d rets compressed, %.2f bits/block (%.1fKB)\n",
		stats.Blocks, stats.TNTBits, stats.TIPs, stats.RetsCompressed, stats.RetsTotal,
		stats.BitsPerBlock(), float64(stats.Bytes)/1024)
	if stats.Syncs > 0 {
		fmt.Printf("sync: %d resynchronization points (every ~%d blocks)\n", stats.Syncs, syncEvery)
	}
	if index {
		entries, err := writeIndex(out+".pt", app.Prog)
		if err != nil {
			return fmt.Errorf("writing seek index: %w", err)
		}
		fmt.Printf("index: %d seek points -> %s\n", entries, trace.IndexPath(out+".pt"))
		if entries == 0 && syncEvery == 0 {
			fmt.Println("index: note: without -syncevery the trace has no interior seek points")
		}
	}
	return nil
}

// writeIndex builds the .ptidx sidecar for a freshly written trace: one
// strict decode collects the sync-point table, keyed by the trace file's
// content hash so consumers detect a regenerated trace.
func writeIndex(ptPath string, prog *program.Program) (int, error) {
	data, err := os.ReadFile(ptPath)
	if err != nil {
		return 0, err
	}
	idx, err := trace.BuildIndex(bytes.NewReader(data), prog)
	if err != nil {
		return 0, err
	}
	if err := trace.WriteIndexFile(trace.IndexPath(ptPath), idx, sha256.Sum256(data), int64(len(data))); err != nil {
		return 0, err
	}
	return len(idx.Entries), nil
}
