// Command rippleexp reproduces the paper's evaluation artifacts: every
// table and figure has an experiment ID (see -list), and `rippleexp -run
// all` regenerates the whole evaluation section.
//
// Simulations fan out across a worker pool (-j, default GOMAXPROCS);
// Ripple cells additionally fan their threshold-tuning sweeps out as
// sub-jobs on the same pool, and results are deterministic for any
// worker count. With -cachedir the
// results are also persisted content-addressed on disk, so a repeated or
// partially-overlapping invocation only simulates what changed; -cache=off
// disables the persistent store even when -cachedir is set (the in-process
// cache always remains). With -store the results instead flow through a
// shared rippled coordinator (see cmd/rippled): many rippleexp processes
// drain one sweep, and each duplicate signature is computed exactly once
// across the whole fleet.
//
// The oracle engine behind every MIN/Demand-MIN limit study is selectable
// with -oracle: "exact" (default) replays the two-pass streaming Belady
// engine, "sampled" estimates from a single-pass sampled-set OPTGen model
// in O(sets × history) memory (budget via -oracle-sets). The `oracle`
// experiment table compares the two side by side.
//
// Usage:
//
//	rippleexp -list
//	rippleexp -run fig7
//	rippleexp -run fig3 -oracle sampled -oracle-sets 32
//	rippleexp -run all -blocks 600000 -apps finagle-http,verilator
//	rippleexp -run all -j 8 -cachedir ~/.cache/rippleexp
//	rippleexp -run fig7 -cachedir ~/.cache/rippleexp -cache=off
//	rippleexp -run all -store http://127.0.0.1:8344
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ripple/internal/cliflag"
	"ripple/internal/experiment"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "experiment ID to reproduce (or 'all')")
	check := flag.Bool("check", false, "after running, validate the paper's qualitative claims against the results")
	blocks := flag.Int("blocks", 0, "trace length in basic blocks (default 600000)")
	warmup := flag.Int("warmup", 0, "warmup blocks excluded from measurement (default blocks/3)")
	apps := flag.String("apps", "", "comma-separated application subset (default: all nine)")
	workers := flag.Int("j", 0, "number of parallel simulation workers (default GOMAXPROCS)")
	cachedir := flag.String("cachedir", "", "directory for the persistent result store (default: no persistence)")
	storeURL := flag.String("store", "", "rippled URL for a shared fleet result store (e.g. http://127.0.0.1:8344); mutually exclusive with -cachedir")
	cacheMode := flag.String("cache", "on", "result store mode: on or off (off ignores -cachedir and -store)")
	oracle := flag.String("oracle", "", "oracle engine: exact (two-pass streaming Belady, default) or sampled (single-pass sampled-set OPTGen estimate)")
	oracleSets := flag.Int("oracle-sets", 0, "sampled-set budget for -oracle sampled (default 64)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	jsonOut := flag.String("json", "", "write a JSON run summary (experiments + job-runner counters) to this path")
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			desc, _ := experiment.Describe(id)
			fmt.Printf("%-12s %s\n", id, desc)
		}
		return
	}
	if *run == "" && !*check {
		fmt.Fprintln(os.Stderr, "rippleexp: -run <id>, -check, or -list required")
		flag.Usage()
		os.Exit(2)
	}
	if *cacheMode != "on" && *cacheMode != "off" {
		fmt.Fprintln(os.Stderr, "rippleexp: -cache must be 'on' or 'off'")
		os.Exit(2)
	}
	if *cachedir != "" && *storeURL != "" {
		fmt.Fprintln(os.Stderr, "rippleexp: -cachedir and -store are mutually exclusive")
		os.Exit(2)
	}
	if *oracle != "" && *oracle != experiment.OracleExact && *oracle != experiment.OracleSampled {
		fmt.Fprintln(os.Stderr, "rippleexp: -oracle must be 'exact' or 'sampled'")
		os.Exit(2)
	}

	// Leave unset fields zero: experiment.New centralizes the defaults.
	// Only flags the user actually passed override the config, so e.g.
	// `-apps x` does not silently reset the trace length.
	cfg := experiment.Config{Log: os.Stderr, Workers: *workers}
	if cliflag.Passed("blocks") {
		cfg.TraceBlocks = *blocks
	}
	if cliflag.Passed("warmup") {
		cfg.WarmupBlocks = *warmup
	}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	cfg.Oracle = *oracle
	if cliflag.Passed("oracle-sets") {
		cfg.OracleSampleSets = *oracleSets
	}
	if *cacheMode == "on" {
		cfg.CacheDir = *cachedir
		cfg.StoreURL = *storeURL
	}
	if *quiet {
		cfg.Log = nil
	}
	suite := experiment.New(cfg)
	if *run != "" {
		if err := suite.Run(*run, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rippleexp:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := writeSummary(*jsonOut, *run, suite); err != nil {
			fmt.Fprintln(os.Stderr, "rippleexp:", err)
			os.Exit(1)
		}
	}
	if *check {
		fmt.Println("\nshape check (paper's qualitative claims):")
		violations, err := suite.ShapeCheck(os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rippleexp: check:", err)
			os.Exit(1)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "rippleexp: %d claim(s) violated\n", len(violations))
			os.Exit(1)
		}
		fmt.Println("all claims hold")
	}
}

// writeSummary emits the run's machine-readable wrap-up: which
// experiments ran and what the job runner did (simulated vs. served from
// store, transient retries, quarantined/recovered store entries).
func writeSummary(path, ran string, suite *experiment.Suite) error {
	st := suite.Stats()
	ids := []string{}
	if ran == "all" {
		ids = experiment.IDs()
	} else if ran != "" {
		ids = append(ids, ran)
	}
	summary := struct {
		Experiments []string
		Apps        []string
		Jobs        struct {
			Simulated   int64
			StoreHits   int64
			MemHits     int64
			FleetHits   int64
			Errors      int64
			Retries     int64
			Quarantined int64
			Recovered   int64
		}
	}{Experiments: ids, Apps: suite.Apps()}
	summary.Jobs.Simulated = st.Computed
	summary.Jobs.StoreHits = st.StoreHits
	summary.Jobs.MemHits = st.MemHits
	summary.Jobs.FleetHits = st.FleetHits
	summary.Jobs.Errors = st.Errors
	summary.Jobs.Retries = st.Retries
	summary.Jobs.Quarantined = st.Quarantined
	summary.Jobs.Recovered = st.Recovered
	raw, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
