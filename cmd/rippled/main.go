// Command rippled serves a content-addressed result store and a
// compute-lease table over HTTP, so many worker processes — or machines
// — drain one sweep against a single shared cache (Ripple-as-a-service).
//
// The directory it serves is an ordinary runner store: a directory a
// previous -cachedir run warmed is immediately servable, and entries
// rippled writes are readable by later -cachedir runs. Workers point at
// it with -store http://host:port on rippleexp, rippleanalyze, and
// ripplesim; each duplicate signature is then computed exactly once
// across the whole fleet.
//
// Usage:
//
//	rippled -dir /var/cache/ripple
//	rippled -dir /var/cache/ripple -listen 127.0.0.1:8344 -lease-ttl 30s
//
// On SIGINT/SIGTERM the server drains in-flight requests and prints a
// final stats line (hits, misses, corrupt entries quarantined, leases).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ripple/internal/rippled"
	"ripple/internal/runner"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8344", "address to serve on (host:port; port 0 picks a free one)")
	dir := flag.String("dir", "", "store directory to serve (required; created if absent)")
	ttl := flag.Duration("lease-ttl", rippled.DefaultLeaseTTL, "compute-lease TTL; heartbeats renew it, expiry returns the job to the queue")
	quiet := flag.Bool("q", false, "suppress per-event logging")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "rippled: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *dir, *ttl, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "rippled:", err)
		os.Exit(1)
	}
}

func run(listen, dir string, ttl time.Duration, quiet bool) error {
	store, err := runner.OpenStore(dir)
	if err != nil {
		return err
	}
	var logw io.Writer
	if !quiet {
		logw = os.Stderr
	}
	srv := rippled.NewServer(store, rippled.ServerOptions{LeaseTTL: ttl, Log: logw})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// The first stdout line is machine-parseable (scripts/smoke_rippled.sh
	// starts on port 0 and reads the bound address from it).
	fmt.Printf("rippled: serving %s on http://%s\n", dir, ln.Addr())

	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	stats, _ := json.Marshal(srv.Stats())
	fmt.Printf("rippled: final stats %s\n", stats)
	return nil
}
