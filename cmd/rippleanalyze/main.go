// Command rippleanalyze is the offline half of Ripple: it decodes a
// recorded control-flow trace, replays the ideal replacement policy over
// it, selects cue blocks, and emits a link-time injection plan.
//
// Usage:
//
//	rippleanalyze -prog /tmp/fh.prog -pt /tmp/fh.pt -threshold 0.55 -out /tmp/fh.plan
//
// With -threshold 0 the invalidation threshold is tuned by sweeping
// candidates and simulating each (the per-application selection of
// Sec. III-C).
package main

import (
	"flag"
	"fmt"
	"os"

	"ripple/internal/blockseq"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/program"
	"ripple/internal/trace"
)

func main() {
	progPath := flag.String("prog", "", "program image from ripplegen (required)")
	ptPath := flag.String("pt", "", "PT trace from ripplegen (required)")
	out := flag.String("out", "", "output plan path (required)")
	threshold := flag.Float64("threshold", 0, "invalidation threshold; 0 tunes it by simulation")
	policy := flag.String("policy", "lru", "underlying replacement policy to tune against")
	prefetcher := flag.String("prefetcher", "fdip", "prefetcher to tune against (none, nlp, fdip)")
	warmup := flag.Int("warmup", 0, "warmup blocks excluded from tuning measurements")
	flag.Parse()

	if err := run(*progPath, *ptPath, *out, *threshold, *policy, *prefetcher, *warmup); err != nil {
		fmt.Fprintln(os.Stderr, "rippleanalyze:", err)
		os.Exit(1)
	}
}

func run(progPath, ptPath, out string, threshold float64, policy, prefetcher string, warmup int) error {
	if progPath == "" || ptPath == "" || out == "" {
		return fmt.Errorf("-prog, -pt, and -out are required")
	}
	if threshold < 0 || threshold > 1 {
		return fmt.Errorf("-threshold %v outside [0, 1] (0 tunes automatically)", threshold)
	}
	prog, tr, err := load(progPath, ptPath)
	if err != nil {
		return err
	}

	acfg := core.DefaultAnalysisConfig()
	analysis, err := core.Analyze(prog, tr, acfg)
	if err != nil {
		return err
	}
	fmt.Printf("analysis: %d trace blocks, %d eviction windows, %d ideal misses\n",
		analysis.TraceBlocks, analysis.Windows, analysis.IdealMisses)

	var plan *core.Plan
	if threshold > 0 {
		plan = analysis.PlanAt(threshold)
	} else {
		tcfg := core.TuneConfig{
			Params:       frontend.DefaultParams(),
			Policy:       policy,
			Prefetcher:   prefetcher,
			WarmupBlocks: warmup,
		}
		tuned, err := core.Tune(analysis, tr, tcfg)
		if err != nil {
			return err
		}
		plan = tuned.BestPlan
		fmt.Printf("tuned threshold %.2f: %+.2f%% speedup, %.0f%% coverage\n",
			tuned.BestPoint().Threshold, tuned.BestPoint().SpeedupPct, tuned.BestPoint().Coverage*100)
	}
	fmt.Printf("plan: %d cue blocks, %d invalidate instructions, %d/%d windows covered, %d JIT cues skipped\n",
		len(plan.Injections), plan.StaticInstructions(), plan.WindowsCovered, plan.WindowsTotal, plan.SkippedJIT)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return plan.Save(f)
}

// load reads the program image and wires a streaming source over the
// trace file; the analysis and tuning passes each re-decode it, so the
// trace is never held in memory.
func load(progPath, ptPath string) (*program.Program, blockseq.Source, error) {
	pf, err := os.Open(progPath)
	if err != nil {
		return nil, nil, err
	}
	defer pf.Close()
	prog, err := program.Load(pf)
	if err != nil {
		return nil, nil, err
	}
	return prog, trace.FileSource(ptPath, prog), nil
}
