// Command rippleanalyze is the offline half of Ripple: it decodes a
// recorded control-flow trace, replays the ideal replacement policy over
// it, selects cue blocks, and emits a link-time injection plan.
//
// Usage:
//
//	rippleanalyze -prog /tmp/fh.prog -pt /tmp/fh.pt -threshold 0.55 -out /tmp/fh.plan
//
// With -threshold 0 the invalidation threshold is tuned by sweeping
// candidates and simulating each (the per-application selection of
// Sec. III-C). The sweep's simulations fan out across -j workers; with
// -cachedir they persist in a content-addressed store keyed by the
// program and trace content, so a warm rerun performs zero simulations.
// Output is byte-identical for any worker count. -json additionally
// writes a machine-readable report of the analysis, sweep, and plan.
//
// By default the trace must decode cleanly (-strict). With -recover a
// damaged trace resynchronizes at the next sync point (ripplegen
// -syncevery) after any corrupt region, the analysis runs over whatever
// survives, and the report carries the decoded coverage. Transient
// simulation failures retry with deterministic backoff (-retries).
//
// With -index the trace replays through its .ptidx seek index (written
// by ripplegen -index, rebuilt automatically when missing or stale), so
// windowed replay decodes roughly each window plus one sync interval
// instead of the window's whole prefix. Every output is byte-identical
// to an unindexed run; -index conflicts with -recover because the index
// is only defined over a cleanly decoding trace.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ripple/internal/blockseq"
	"ripple/internal/cliflag"
	"ripple/internal/core"
	"ripple/internal/frontend"
	"ripple/internal/opt"
	"ripple/internal/program"
	"ripple/internal/rippled"
	"ripple/internal/runner"
	"ripple/internal/trace"
)

func main() {
	var o options
	flag.StringVar(&o.ProgPath, "prog", "", "program image from ripplegen (required)")
	flag.StringVar(&o.PTPath, "pt", "", "PT trace from ripplegen (required)")
	flag.StringVar(&o.Out, "out", "", "output plan path (required)")
	flag.Float64Var(&o.Threshold, "threshold", 0, "invalidation threshold; 0 tunes it by simulation")
	flag.StringVar(&o.Policy, "policy", "lru", "underlying replacement policy to tune against")
	flag.StringVar(&o.Prefetcher, "prefetcher", "fdip", "prefetcher to tune against (none, nlp, fdip)")
	flag.IntVar(&o.Warmup, "warmup", 0, "warmup blocks excluded from tuning measurements")
	flag.IntVar(&o.Workers, "j", 0, "parallel tuning simulations (default GOMAXPROCS)")
	flag.StringVar(&o.CacheDir, "cachedir", "", "directory for the persistent result store (default: no persistence)")
	flag.StringVar(&o.StoreURL, "store", "", "rippled URL for a shared fleet result store (e.g. http://127.0.0.1:8344); mutually exclusive with -cachedir")
	flag.StringVar(&o.JSONOut, "json", "", "also write a JSON report to this path")
	flag.BoolVar(&o.Recover, "recover", false, "resynchronize past damaged trace regions instead of failing")
	flag.BoolVar(&o.Index, "index", false, "replay through the .ptidx seek index (built on the fly if absent or stale); conflicts with -recover")
	strict := flag.Bool("strict", false, "fail on any trace damage (the default; conflicts with -recover)")
	flag.IntVar(&o.Retries, "retries", 2, "retry budget for transiently failing simulations")
	flag.StringVar(&o.Oracle, "oracle", "exact", "oracle engine for the ideal-miss report: exact, or sampled to add a single-pass sampled-set OPTGen estimate beside it")
	flag.IntVar(&o.OracleSets, "oracle-sets", 0, "sampled-set budget for -oracle sampled (default 64)")
	flag.BoolVar(&o.Mmap, "mmap", true, "memory-map the trace for zero-copy decode (ReadAt fallback when disabled or unsupported by the platform)")
	flag.IntVar(&o.Decoders, "decoders", 1, "decode this many PSB sync regions concurrently per pass (> 1 requires -mmap)")
	flag.Parse()
	o.Stdout = os.Stdout
	if cliflag.Passed("recover") && cliflag.Passed("strict") && o.Recover && *strict {
		fmt.Fprintln(os.Stderr, "rippleanalyze: -recover and -strict are mutually exclusive")
		os.Exit(2)
	}
	if o.CacheDir != "" && o.StoreURL != "" {
		fmt.Fprintln(os.Stderr, "rippleanalyze: -cachedir and -store are mutually exclusive")
		os.Exit(2)
	}

	stats, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rippleanalyze:", err)
		os.Exit(1)
	}
	if (o.CacheDir != "" || o.StoreURL != "") && o.Threshold == 0 {
		line := fmt.Sprintf("jobs: %d simulated, %d from store", stats.Computed, stats.StoreHits)
		if stats.FleetHits > 0 {
			line += fmt.Sprintf(", %d from fleet", stats.FleetHits)
		}
		if stats.Retries > 0 {
			line += fmt.Sprintf(", %d retried", stats.Retries)
		}
		if stats.Quarantined > 0 {
			line += fmt.Sprintf(", %d quarantined/%d recovered", stats.Quarantined, stats.Recovered)
		}
		fmt.Println(line)
	}
}

// options carries one invocation's inputs; tests drive run directly.
type options struct {
	ProgPath, PTPath, Out string
	Threshold             float64
	Policy, Prefetcher    string
	Warmup                int
	Workers               int
	CacheDir              string
	StoreURL              string
	JSONOut               string
	Recover               bool
	Index                 bool
	Mmap                  bool
	Decoders              int
	Retries               int
	Oracle                string
	OracleSets            int
	Stdout                io.Writer
}

// report is the -json output: everything the run decided, in a
// deterministic field order (injections sorted by cue block).
type report struct {
	Program     string
	TraceBlocks int
	Windows     int
	IdealMisses uint64
	// SampledOracle carries the sampled-set OPTGen estimate of the same
	// ideal-miss count (present only with -oracle sampled).
	SampledOracle *sampledReport `json:",omitempty"`
	// Coverage reports how much of the declared profile survived decoding
	// (present only with -recover).
	Coverage *core.SourceCoverage `json:",omitempty"`
	// Curve/Best describe the threshold sweep (absent with -threshold set).
	Curve []core.ThresholdPoint `json:",omitempty"`
	Best  int
	Plan  planReport
	// Jobs summarizes the sweep's execution (absent with -threshold set).
	// ComputeTime and in-process coalescing are excluded: they vary with
	// scheduling, and the report must be byte-identical for any -j.
	Jobs *jobsReport `json:",omitempty"`
}

// sampledReport is the -oracle sampled estimate beside the exact count.
type sampledReport struct {
	EstimatedMisses uint64
	SampleSets      int
	TotalSets       int
	History         int
	// ErrPct is the estimate's signed error against the exact count, %.
	ErrPct float64
}

type jobsReport struct {
	Simulated   int64
	StoreHits   int64
	Retries     int64
	Quarantined int64
	Recovered   int64
}

type planReport struct {
	Threshold      float64
	Instructions   int
	WindowsCovered int
	WindowsTotal   int
	SkippedJIT     int
	SkippedKernel  int
	Injections     []injectionReport
}

type injectionReport struct {
	Block   program.BlockID
	Victims []uint64
}

func run(o options) (runner.Stats, error) {
	var stats runner.Stats
	if o.ProgPath == "" || o.PTPath == "" || o.Out == "" {
		return stats, fmt.Errorf("-prog, -pt, and -out are required")
	}
	if o.Threshold < 0 || o.Threshold > 1 {
		return stats, fmt.Errorf("-threshold %v outside [0, 1] (0 tunes automatically)", o.Threshold)
	}
	if o.Stdout == nil {
		o.Stdout = io.Discard
	}
	if o.Index && o.Recover {
		// A seek index is built from a strict decode; a damaged trace has no
		// well-defined byte offsets to seek to.
		return stats, fmt.Errorf("-index and -recover are mutually exclusive")
	}
	if o.Decoders > 1 && !o.Mmap {
		return stats, fmt.Errorf("-decoders %d requires -mmap (parallel decode runs over the mapping)", o.Decoders)
	}
	prog, tr, err := load(o.ProgPath, o.PTPath, o.Recover, o.Index, trace.FileOptions{NoMmap: !o.Mmap, Decoders: o.Decoders})
	if err != nil {
		return stats, err
	}

	acfg := core.DefaultAnalysisConfig()
	analysis, err := core.Analyze(prog, tr, acfg)
	if err != nil {
		return stats, err
	}
	fmt.Fprintf(o.Stdout, "analysis: %d trace blocks, %d eviction windows, %d ideal misses\n",
		analysis.TraceBlocks, analysis.Windows, analysis.IdealMisses)
	if cov := analysis.Coverage; cov != nil {
		fmt.Fprintf(o.Stdout, "coverage: %.2f%% of declared profile (%d of %d blocks", cov.Fraction()*100, cov.Decoded, cov.Declared)
		if cov.Regions > 0 {
			fmt.Fprintf(o.Stdout, "; %d damaged regions, %d blocks lost", cov.Regions, cov.Lost)
		}
		fmt.Fprintln(o.Stdout, ")")
	}

	rep := report{
		Program:     prog.Name,
		TraceBlocks: analysis.TraceBlocks,
		Windows:     analysis.Windows,
		IdealMisses: analysis.IdealMisses,
		Coverage:    analysis.Coverage,
	}
	switch o.Oracle {
	case "", "exact":
		// The analysis's exact streaming replay is the only engine needed.
	case "sampled":
		sr, err := opt.SimulateSampled(frontend.DemandEvents(prog, tr), frontend.DefaultParams().L1I,
			opt.ModeMIN, opt.OPTGenConfig{SampleSets: o.OracleSets})
		if err != nil {
			return stats, err
		}
		est := sr.EstimatedDemandMisses()
		s := &sampledReport{
			EstimatedMisses: est,
			SampleSets:      sr.SampleSets,
			TotalSets:       sr.TotalSets,
			History:         sr.History,
		}
		if analysis.IdealMisses > 0 {
			s.ErrPct = (float64(est) - float64(analysis.IdealMisses)) / float64(analysis.IdealMisses) * 100
		}
		rep.SampledOracle = s
		fmt.Fprintf(o.Stdout, "sampled oracle: ~%d ideal misses (%d/%d sets, history %d, %+.1f%% vs exact)\n",
			est, sr.SampleSets, sr.TotalSets, sr.History, s.ErrPct)
	default:
		return stats, fmt.Errorf("-oracle must be 'exact' or 'sampled' (got %q)", o.Oracle)
	}
	var plan *core.Plan
	if o.Threshold > 0 {
		plan = analysis.PlanAt(o.Threshold)
	} else {
		tcfg := core.TuneConfig{
			Params:       frontend.DefaultParams(),
			Policy:       o.Policy,
			Prefetcher:   o.Prefetcher,
			WarmupBlocks: o.Warmup,
		}
		popts, pool, err := parallelOpts(o)
		if err != nil {
			return stats, err
		}
		tuned, err := core.TuneParallel(analysis, tr, tcfg, popts)
		if err != nil {
			return stats, err
		}
		stats = pool.Stats()
		plan = tuned.BestPlan
		rep.Curve, rep.Best = tuned.Curve, tuned.Best
		rep.Jobs = &jobsReport{
			Simulated:   stats.Computed,
			StoreHits:   stats.StoreHits,
			Retries:     stats.Retries,
			Quarantined: stats.Quarantined,
			Recovered:   stats.Recovered,
		}
		fmt.Fprintf(o.Stdout, "tuned threshold %.2f: %+.2f%% speedup, %.0f%% coverage\n",
			tuned.BestPoint().Threshold, tuned.BestPoint().SpeedupPct, tuned.BestPoint().Coverage*100)
	}
	fmt.Fprintf(o.Stdout, "plan: %d cue blocks, %d invalidate instructions, %d/%d windows covered, %d JIT cues skipped\n",
		len(plan.Injections), plan.StaticInstructions(), plan.WindowsCovered, plan.WindowsTotal, plan.SkippedJIT)

	f, err := os.Create(o.Out)
	if err != nil {
		return stats, err
	}
	defer f.Close()
	if err := plan.Save(f); err != nil {
		return stats, err
	}
	if o.JSONOut != "" {
		rep.Plan = summarizePlan(plan)
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return stats, err
		}
		if err := os.WriteFile(o.JSONOut, append(raw, '\n'), 0o644); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// parallelOpts builds the tuning sweep's execution substrate: a worker
// pool (with a persistent store under -cachedir) and the trace's content
// identity, so equal (program, trace, config) reruns hit the store.
func parallelOpts(o options) (core.ParallelOptions, *runner.Pool, error) {
	var store runner.StoreBackend
	if o.StoreURL != "" {
		cl, err := rippled.NewClient(o.StoreURL, rippled.ClientOptions{Log: os.Stderr})
		if err != nil {
			return core.ParallelOptions{}, nil, err
		}
		store = cl
	} else if o.CacheDir != "" {
		st, err := runner.OpenStore(o.CacheDir)
		if err != nil {
			return core.ParallelOptions{}, nil, err
		}
		store = st
	}
	pool := runner.New(runner.Options{Workers: o.Workers, Store: store, Retries: o.Retries})
	srcID, err := fileDigest(o.PTPath)
	if err != nil {
		return core.ParallelOptions{}, nil, err
	}
	return core.ParallelOptions{Pool: pool, SourceID: "pt:" + srcID}, pool, nil
}

// fileDigest returns the SHA-256 (hex) of a file's content.
func fileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// summarizePlan flattens a plan into the deterministic report form.
func summarizePlan(p *core.Plan) planReport {
	pr := planReport{
		Threshold:      p.Threshold,
		Instructions:   p.StaticInstructions(),
		WindowsCovered: p.WindowsCovered,
		WindowsTotal:   p.WindowsTotal,
		SkippedJIT:     p.SkippedJIT,
		SkippedKernel:  p.SkippedKernel,
		Injections:     []injectionReport{},
	}
	for b, victims := range p.Injections {
		pr.Injections = append(pr.Injections, injectionReport{Block: b, Victims: victims})
	}
	sort.Slice(pr.Injections, func(i, j int) bool { return pr.Injections[i].Block < pr.Injections[j].Block })
	return pr
}

// load reads the program image and wires a streaming source over the
// trace file; the analysis and tuning passes each re-decode it, so the
// trace is never held in memory. With rec the source decodes in recovery
// mode: damaged regions are skipped at sync points and accounted in the
// analysis coverage. With indexed the source replays through the .ptidx
// seek index (rebuilt if missing or stale), so windowed replay skips
// ahead instead of decoding each window's full prefix. fo carries the
// read options (mmap vs ReadAt, parallel region decoders).
func load(progPath, ptPath string, rec, indexed bool, fo trace.FileOptions) (*program.Program, blockseq.Source, error) {
	pf, err := os.Open(progPath)
	if err != nil {
		return nil, nil, err
	}
	defer pf.Close()
	prog, err := program.Load(pf)
	if err != nil {
		return nil, nil, err
	}
	if indexed {
		src, err := trace.IndexedFileSourceOptions(ptPath, prog, fo)
		if err != nil {
			return nil, nil, err
		}
		return prog, src, nil
	}
	fo.Recover = rec
	return prog, trace.FileSourceOptions(ptPath, prog, fo), nil
}
