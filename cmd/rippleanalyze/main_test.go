package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ripple/internal/core"
	"ripple/internal/fault"
	"ripple/internal/trace"
	"ripple/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenModel is a synthetic app whose hot code exceeds the default
// 32KiB L1I, so the analysis finds real eviction windows and the tuned
// plan is non-trivial. Everything downstream of the (model, seed, trace
// length) triple is deterministic.
func goldenModel() workload.Model {
	return workload.Model{
		Name: "golden", Seed: 41,
		Funcs: 700, ServiceFuncs: 40, UtilityFuncs: 10, Levels: 6,
		BlocksMin: 5, BlocksMax: 10, BlockBytesMin: 48, BlockBytesMax: 96,
		PCond: 0.3, PCall: 0.35, PICall: 0.05, PIJump: 0.03,
		PLoopBack: 0.1, PBiasStrong: 0.8,
		CalleeMin: 2, CalleeMax: 5, IndirectFanout: 4,
		ZipfRequest: 0.4, RequestsPerBurst: 4,
	}
}

// fixture writes the golden app's program image and encoded PT trace.
func fixture(t *testing.T) (progPath, ptPath string) {
	t.Helper()
	app, err := workload.Build(goldenModel())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	progPath = filepath.Join(dir, "app.prog")
	pf, err := os.Create(progPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Prog.Save(pf); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	ptPath = filepath.Join(dir, "app.pt")
	tf, err := os.Create(ptPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Encode(tf, app.Prog, app.Trace(0, 30_000)); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	return progPath, ptPath
}

func baseOptions(progPath, ptPath, dir, tag string) options {
	return options{
		ProgPath:   progPath,
		PTPath:     ptPath,
		Out:        filepath.Join(dir, "plan-"+tag),
		Policy:     "lru",
		Prefetcher: "none",
	}
}

// TestGoldenReportDeterministic: a fixed (app, seed, threshold sweep)
// must produce the committed JSON report byte-for-byte, and -j 1 vs -j 8
// must be byte-identical (parallel tuning may not change any output).
// Regenerate after intentional changes with:
//
//	go test ./cmd/rippleanalyze -run Golden -update
func TestGoldenReportDeterministic(t *testing.T) {
	progPath, ptPath := fixture(t)
	dir := t.TempDir()
	runJSON := func(workers int) []byte {
		t.Helper()
		o := baseOptions(progPath, ptPath, dir, fmt.Sprintf("j%d", workers))
		o.Workers = workers
		o.JSONOut = filepath.Join(dir, fmt.Sprintf("report-j%d.json", workers))
		if _, err := run(o); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(o.JSONOut)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	j1 := runJSON(1)
	j8 := runJSON(8)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("-j 1 and -j 8 reports differ:\n-j1: %s\n-j8: %s", j1, j8)
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, j1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(j1, want) {
		t.Fatalf("report diverged from golden (if intentional, regenerate with -update):\ngot: %s\nwant: %s", j1, want)
	}
}

// TestWarmCacheRerunSkipsSimulation: with -cachedir, a second identical
// invocation must perform zero simulations — every sweep job (baseline
// plus one per threshold) is served from the persistent store.
func TestWarmCacheRerunSkipsSimulation(t *testing.T) {
	progPath, ptPath := fixture(t)
	dir := t.TempDir()
	o := baseOptions(progPath, ptPath, dir, "warm")
	o.Workers = 4
	o.CacheDir = filepath.Join(dir, "cache")

	jobs := int64(len(core.DefaultThresholds())) + 1
	cold, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Computed != jobs || cold.StoreHits != 0 {
		t.Fatalf("cold run: computed=%d storeHits=%d, want %d/0", cold.Computed, cold.StoreHits, jobs)
	}
	warm, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Computed != 0 {
		t.Fatalf("warm rerun simulated %d jobs, want 0", warm.Computed)
	}
	if warm.StoreHits != jobs {
		t.Fatalf("warm rerun: %d store hits, want %d", warm.StoreHits, jobs)
	}
	// The plan files from both runs must be identical.
	coldPlan, err := os.ReadFile(o.Out)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.Out = filepath.Join(dir, "plan-warm2")
	if _, err := run(o2); err != nil {
		t.Fatal(err)
	}
	warmPlan, err := os.ReadFile(o2.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldPlan, warmPlan) {
		t.Fatal("warm rerun emitted a different plan")
	}
}

// TestIndexedReportByteIdentical: -index must be a pure acceleration —
// the JSON report and the plan file are byte-identical with and without
// it, the first indexed run materializes the .ptidx sidecar, and a rerun
// over the existing sidecar still matches.
func TestIndexedReportByteIdentical(t *testing.T) {
	app, err := workload.Build(goldenModel())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	progPath := filepath.Join(dir, "app.prog")
	pf, err := os.Create(progPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Prog.Save(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	var buf bytes.Buffer
	if _, err := trace.EncodeSourceSync(&buf, app.Prog, app.Stream(0, 30_000), 256); err != nil {
		t.Fatal(err)
	}
	ptPath := filepath.Join(dir, "app.pt")
	if err := os.WriteFile(ptPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	runOnce := func(tag string, indexed bool) (reportRaw, planRaw []byte) {
		t.Helper()
		o := baseOptions(progPath, ptPath, dir, tag)
		o.Workers = 4
		o.Index = indexed
		o.JSONOut = filepath.Join(dir, "report-"+tag+".json")
		if _, err := run(o); err != nil {
			t.Fatal(err)
		}
		rep, err := os.ReadFile(o.JSONOut)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := os.ReadFile(o.Out)
		if err != nil {
			t.Fatal(err)
		}
		return rep, plan
	}

	plainRep, plainPlan := runOnce("plain", false)
	if _, err := os.Stat(trace.IndexPath(ptPath)); !os.IsNotExist(err) {
		t.Fatalf("unindexed run touched the sidecar: %v", err)
	}
	idxRep, idxPlan := runOnce("indexed", true)
	if !bytes.Equal(plainRep, idxRep) {
		t.Fatalf("-index changed the report:\nplain: %s\nindexed: %s", plainRep, idxRep)
	}
	if !bytes.Equal(plainPlan, idxPlan) {
		t.Fatal("-index changed the plan file")
	}
	if _, err := os.Stat(trace.IndexPath(ptPath)); err != nil {
		t.Fatalf("indexed run left no sidecar: %v", err)
	}
	// Rerun over the now-existing sidecar.
	againRep, againPlan := runOnce("indexed2", true)
	if !bytes.Equal(plainRep, againRep) || !bytes.Equal(plainPlan, againPlan) {
		t.Fatal("rerun over the existing sidecar diverged")
	}
}

// TestIndexConflictsWithRecover: the two decode modes are mutually
// exclusive at the CLI surface.
func TestIndexConflictsWithRecover(t *testing.T) {
	progPath, ptPath := fixture(t)
	o := baseOptions(progPath, ptPath, t.TempDir(), "conflict")
	o.Index = true
	o.Recover = true
	if _, err := run(o); err == nil {
		t.Fatal("run accepted -index with -recover")
	}
}

// TestRecoverDamagedTrace: with -recover, a corrupted sync-point trace
// analyzes end to end — the plan is produced from the surviving profile
// and the JSON report carries a sub-1 coverage figure. The same damaged
// input must fail in the default strict mode.
func TestRecoverDamagedTrace(t *testing.T) {
	app, err := workload.Build(goldenModel())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	progPath := filepath.Join(dir, "app.prog")
	pf, err := os.Create(progPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Prog.Save(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	var buf bytes.Buffer
	if _, err := trace.EncodeSourceSync(&buf, app.Prog, app.Stream(0, 30_000), 256); err != nil {
		t.Fatal(err)
	}
	damaged, _ := fault.NewInjector(7).Overwrite(buf.Bytes(), 32, buf.Len()/3, buf.Len()/2)
	ptPath := filepath.Join(dir, "app.pt")
	if err := os.WriteFile(ptPath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	o := baseOptions(progPath, ptPath, dir, "recover")
	o.Threshold = 0.5 // fixed threshold: no sweep, keep the test fast
	o.JSONOut = filepath.Join(dir, "report.json")
	if _, err := run(o); err == nil {
		t.Fatal("strict mode accepted a damaged trace")
	}
	o.Recover = true
	if _, err := run(o); err != nil {
		t.Fatalf("recover mode failed: %v", err)
	}
	raw, err := os.ReadFile(o.JSONOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Coverage == nil {
		t.Fatal("report has no coverage block")
	}
	if f := rep.Coverage.Fraction(); f <= 0 || f >= 1 {
		t.Fatalf("implausible coverage %v (%+v)", f, rep.Coverage)
	}
	if rep.Coverage.Regions == 0 || rep.TraceBlocks != int(rep.Coverage.Decoded) {
		t.Fatalf("coverage inconsistent with analysis: %+v vs %d trace blocks", rep.Coverage, rep.TraceBlocks)
	}
	if _, err := os.Stat(o.Out); err != nil {
		t.Fatalf("no plan written: %v", err)
	}
}
