// Command rippleinject is the link-time rewriting stage as a standalone
// tool: it applies an injection plan (from rippleanalyze) to a program
// image (from ripplegen) and writes the rewritten, re-laid-out image —
// what a production deployment would feed to its post-link optimizer.
//
// Usage:
//
//	rippleinject -prog /tmp/fh.prog -plan /tmp/fh.plan -out /tmp/fh-ripple.prog
package main

import (
	"flag"
	"fmt"
	"os"

	"ripple/internal/core"
	"ripple/internal/program"
)

func main() {
	progPath := flag.String("prog", "", "program image from ripplegen (required)")
	planPath := flag.String("plan", "", "injection plan from rippleanalyze (required)")
	out := flag.String("out", "", "output path for the rewritten image (required)")
	flag.Parse()

	if err := run(*progPath, *planPath, *out); err != nil {
		fmt.Fprintln(os.Stderr, "rippleinject:", err)
		os.Exit(1)
	}
}

func run(progPath, planPath, out string) error {
	if progPath == "" || planPath == "" || out == "" {
		return fmt.Errorf("-prog, -plan, and -out are required")
	}
	pf, err := os.Open(progPath)
	if err != nil {
		return err
	}
	prog, err := program.Load(pf)
	pf.Close()
	if err != nil {
		return err
	}
	lf, err := os.Open(planPath)
	if err != nil {
		return err
	}
	plan, err := core.LoadPlan(lf)
	lf.Close()
	if err != nil {
		return err
	}

	injected := plan.Apply(prog)
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := injected.Save(of); err != nil {
		return err
	}

	grew := injected.TotalBytes() - prog.TotalBytes()
	fmt.Printf("injected %d invalidate instructions into %d cue blocks\n",
		plan.StaticInstructions(), len(plan.Injections))
	fmt.Printf("text: %.1fKB -> %.1fKB (+%d bytes, %.2f%% static instruction overhead)\n",
		float64(prog.TotalBytes())/1024, float64(injected.TotalBytes())/1024, grew,
		float64(injected.StaticInstrs()-prog.StaticInstrs())/float64(prog.StaticInstrs())*100)
	return nil
}
